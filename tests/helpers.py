"""Shared test helpers: tiny programs, reference interpreters, builders,
and the seeded-sweep workhorses (one fig07 run + its observable tuple)
used by the compiled-template, tracing, rebalancer, and multi-tenant
equivalence sweeps."""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import mean_iteration_time
from repro.apps import LRApp, LRSpec
from repro.chaos import FaultPlan
from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import FunctionRegistry, NimbusCluster


def combine_registry() -> FunctionRegistry:
    """Registry with a deterministic value-combining task function.

    ``combine`` writes a hash-like fold of its read payloads and parameter,
    so any reordering or missed copy changes the result — ideal for
    verifying read-latest-value semantics end to end.
    """
    registry = FunctionRegistry()

    def combine(ctx):
        acc = 17
        for value in ctx.reads():
            acc = (acc * 31 + (value if value is not None else 7)) % 1000003
        if ctx.params is not None:
            acc = (acc * 31 + ctx.params) % 1000003
        ctx.write(ctx.write_set[0], acc)

    def seed(ctx):
        ctx.write(ctx.write_set[0], ctx.params if ctx.params is not None else 1)

    registry.register("combine", fn=combine, duration=1e-3)
    registry.register("seed", fn=seed, duration=1e-4)
    return registry


def reference_execute(blocks: Sequence[Tuple[BlockSpec, Dict[str, Any]]],
                      initial: Optional[Dict[int, Any]] = None) -> Dict[int, Any]:
    """Sequential reference interpreter: run blocks in program order on a
    single global store, with the same ``combine``/``seed`` semantics."""
    store: Dict[int, Any] = dict(initial or {})
    for block, params in blocks:
        for _stage, task in block.all_tasks():
            param = params.get(task.param_slot) if task.param_slot else None
            if task.function == "seed":
                store[task.write[0]] = param if param is not None else 1
            elif task.function == "combine":
                acc = 17
                for oid in task.read:
                    value = store.get(oid)
                    acc = (acc * 31 + (value if value is not None else 7)) % 1000003
                if param is not None:
                    acc = (acc * 31 + param) % 1000003
                store[task.write[0]] = acc
            else:
                raise ValueError(f"unknown reference function {task.function}")
    return store


def run_program(program, registry, num_workers=2, use_templates=True,
                max_seconds=1e5, **kwargs):
    """Build a cluster, run the program to completion, return the cluster."""
    cluster = NimbusCluster(num_workers, program, registry=registry,
                            use_templates=use_templates, **kwargs)
    cluster.run_until_finished(max_seconds=max_seconds)
    return cluster


def simple_define(objects: Dict[int, Tuple[str, int]], homes=None):
    """Build a job.define() payload: {oid: (name, size)} (+ optional homes)."""
    homes = homes or {}
    return [(oid, name, 0, size, homes.get(oid))
            for oid, (name, size) in objects.items()]


def worker_values(cluster: NimbusCluster, oids) -> Dict[int, Any]:
    """Read each object's value from the worker holding its latest version."""
    directory = cluster.controller.directory
    out = {}
    for oid in oids:
        holders = directory.holders_of_latest(oid)
        assert holders, f"object {oid} has no latest holder"
        out[oid] = cluster.workers[min(holders)].store.get(oid)
    return out


# ---------------------------------------------------------------------------
# Seeded-sweep workhorses (shared by the equivalence/property suites)
# ---------------------------------------------------------------------------
def run_lr(workers=4, iterations=8, seed=0, partitions_per_worker=4,
           rebalance=False, chaos_profile=None, chaos_seed=0, trace=None,
           straggler_scales=None, blocking=False, **cluster_kwargs):
    """One fig07 logistic-regression run to completion.

    The canonical subject of every seeded sweep: small enough to run in
    tens of milliseconds, rich enough (templates, reductions, patches
    under chaos) to exercise the whole control plane. Extra cluster
    keywords (``use_compiled``, ``patch_cache_cap``, ...) pass through.
    """
    spec = LRSpec(num_workers=workers, iterations=iterations,
                  partitions_per_worker=partitions_per_worker)
    app = LRApp(spec)
    plan = (None if chaos_profile is None
            else FaultPlan.from_profile(chaos_profile, seed=chaos_seed))
    cluster = NimbusCluster(workers, app.program(blocking=blocking),
                            registry=app.registry, seed=seed,
                            chaos_plan=plan, rebalance=rebalance,
                            trace=trace, straggler_scales=straggler_scales,
                            **cluster_kwargs)
    cluster.run_until_finished(max_seconds=1e6)
    return cluster


def virtual_results(cluster, block_id: Optional[str] = None, skip: int = 0):
    """Everything a run computes in virtual time, as one comparable tuple.

    With ``block_id`` the tuple leads with that block's steady-state mean
    iteration time (the tracing suite's convention); without it the tuple
    is (virtual end time, events run, full counter snapshot).
    """
    base = (
        cluster.sim.now,
        cluster.sim.events_run,
        cluster.metrics.counters_snapshot(),
    )
    if block_id is None:
        return base
    return (mean_iteration_time(cluster.metrics, block_id, skip=skip),) + base


def canon(value):
    """Hashable bit-exact form of a task result (arrays by raw bytes)."""
    import numpy as np
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, dict):
        return tuple(sorted((k, canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(canon(v) for v in value)
    return value


def computed_values(cluster, job_id: int = 0):
    """Everything one job *computed*, independent of when it computed it.

    The decentralized scheduling mode intentionally changes event timing
    (windows replace per-instance controller round-trips), so mode-parity
    sweeps cannot compare :func:`virtual_results` — they compare this:
    the ordered per-block results history, the executed-task count, and
    the final bit-exact value of every object in the job's directory.
    """
    ctx = cluster.controller.jobs[job_id]
    history = tuple(
        (block_id, tuple(sorted((k, canon(v)) for k, v in results.items())))
        for block_id, results in ctx.results_history)
    values = {}
    for obj in ctx.directory.objects():
        holders = ctx.directory.holders_of_latest(obj.oid)
        if not holders:  # evicted/garbage-collected objects have no value
            continue
        values[obj.oid] = canon(cluster.workers[min(holders)].store.get(obj.oid))
    return (history, cluster.metrics.count("tasks_executed"), values)


def random_combine_schedule(seed: int, oids: Sequence[int]):
    """A seeded random program over ``combine``/``seed`` tasks.

    Returns ``(seed_block, params, blocks, iterations)``: a seeding block
    that gives every object a parameterized initial value, then 1-3
    random combine blocks (random read sets, random single writes, split
    into up to two stages) looped a random number of times. Any control
    plane that reorders a copy or drops a version changes the fold.
    """
    rng = random.Random(seed)
    oids = list(oids)
    blocks = []
    for b in range(rng.randint(1, 3)):
        tasks = []
        for _ in range(rng.randint(1, 8)):
            reads = tuple(rng.sample(oids, rng.randint(0, 3)))
            write = rng.choice(oids)
            tasks.append(LogicalTask("combine", read=reads, write=(write,)))
        split = rng.randint(1, len(tasks))
        stages = [StageSpec("s0", tasks[:split])]
        if tasks[split:]:
            stages.append(StageSpec("s1", tasks[split:]))
        blocks.append(BlockSpec(f"rand{b}", stages))
    seed_block = BlockSpec("seedblk", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot=f"v{oid}")
        for oid in oids
    ])])
    params = {f"v{oid}": rng.randint(1, 100) for oid in oids}
    iterations = rng.randint(2, 5)
    return seed_block, params, blocks, iterations


def cluster_observables(cluster, oids):
    """(counters, virtual end time, events, final object values) — the
    four-way observable the equivalence sweeps compare."""
    return (
        cluster.metrics.counters_snapshot(),
        cluster.sim.now,
        cluster.sim.events_run,
        worker_values(cluster, oids),
    )


def assert_identical(actual, expected, label: str) -> None:
    """Compare two :func:`cluster_observables` tuples field by field."""
    a_counters, a_now, a_events, a_values = actual
    e_counters, e_now, e_events, e_values = expected
    assert a_counters == e_counters, f"{label}: counters diverged"
    assert a_now == e_now, f"{label}: virtual end time diverged"
    assert a_events == e_events, f"{label}: event count diverged"
    assert a_values == e_values, f"{label}: data values diverged"
