"""Dynamic scheduling integration tests: edits, eviction, restore (§2.3,
Figures 9 and 10) — with end-to-end value correctness after every change."""

import pytest

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import (
    combine_registry,
    reference_execute,
    simple_define,
    worker_values,
)

NUM_PARTS = 4
DATA = list(range(1, NUM_PARTS + 1))  # oids 1..4
OUT = [oid + 10 for oid in DATA]  # oids 11..14
ACC = 30


def blocks():
    seed_block = BlockSpec("seed", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot="v")
        for oid in DATA + [ACC]
    ])])
    iter_block = BlockSpec("iter", [
        StageSpec("map", [
            LogicalTask("combine", read=(DATA[i],), write=(OUT[i],))
            for i in range(NUM_PARTS)
        ]),
        StageSpec("fold", [
            LogicalTask("combine", read=tuple(OUT) + (ACC,), write=(ACC,)),
        ]),
    ], returns={"acc": ACC})
    return seed_block, iter_block


def reference(iterations):
    seed_block, iter_block = blocks()
    return reference_execute(
        [(seed_block, {"v": 3})] + [(iter_block, {})] * iterations)


def run_with_directives(iterations, directive_at=None, directive=None,
                        num_workers=2):
    """Run the iteration program, delivering a ManagerDirective to the
    controller just before iteration ``directive_at``."""
    seed_block, iter_block = blocks()
    objects = {oid: (f"o{oid}", 8) for oid in DATA + OUT + [ACC]}
    cluster_box = {}

    def program(job):
        yield job.define(simple_define(objects))
        yield job.run(seed_block, {"v": 3})
        for i in range(iterations):
            if directive_at is not None and i == directive_at:
                cluster_box["cluster"].controller.deliver(
                    P.ManagerDirective(directive))
            yield job.run(iter_block)

    cluster = NimbusCluster(num_workers, program, registry=combine_registry(),
                            use_templates=True)
    cluster_box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e5)
    return cluster


def test_baseline_without_directives():
    cluster = run_with_directives(8)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]


def test_migration_via_edits_preserves_results():
    def migrate(controller):
        # move the first two map tasks to worker 1 (small change → edits;
        # the tiny 5-task test template needs a generous edit threshold)
        controller.edit_threshold = 0.5
        result = controller.migrate_tasks("iter", [(0, 1), (2, 1)])
        assert result == "edits"

    cluster = run_with_directives(8, directive_at=5, directive=migrate)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    # relocatable inputs move with the tasks: 3 edit ops per migration
    assert cluster.metrics.count("edits_applied") == 6
    # the migrated tasks now run on worker 1
    wts = cluster.controller.worker_templates[("iter", 0)]
    assert wts.task_locations[0][0] == 1
    assert wts.task_locations[2][0] == 1


def test_migration_keeps_auto_validation():
    """Edit-based migration preserves the template contract, so iterations
    after the edit still auto-validate (Fig. 10's 'negligible overhead')."""
    def migrate(controller):
        controller.migrate_tasks("iter", [(0, 1)])

    cluster = run_with_directives(10, directive_at=6, directive=migrate)
    # 10 iterations: 3 install phases, 7 templated; all 7 auto-validate
    # except the first templated one (full validation after central runs)
    assert cluster.metrics.count("auto_validations") == 6
    assert cluster.metrics.count("full_validations") == 1


def test_large_migration_triggers_reinstall():
    def migrate(controller):
        moves = [(i, 1) for i in range(NUM_PARTS)]  # move everything
        result = controller.migrate_tasks("iter", moves)
        assert result == "reinstall"

    cluster = run_with_directives(8, directive_at=5, directive=migrate)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    assert cluster.metrics.count("worker_template_regenerations") == 1
    assert cluster.controller.current_version["iter"] == 1


def test_eviction_moves_work_and_preserves_results():
    state = {}

    def evict(controller):
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        controller.evict_workers([1])

    cluster = run_with_directives(8, directive_at=4, directive=evict,
                                  num_workers=2)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    # all template entries now live on worker 0
    template = cluster.controller.templates["iter"]
    assert set(e.worker for e in template.entries) == {0}


def test_evict_then_restore_reuses_cached_templates():
    state = {}

    def evict(controller):
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        controller.evict_workers([1])

    def restore(controller):
        controller.restore_workers([1], state["placement"],
                                   state["versions"])

    seed_block, iter_block = blocks()
    objects = {oid: (f"o{oid}", 8) for oid in DATA + OUT + [ACC]}
    box = {}

    def program(job):
        yield job.define(simple_define(objects))
        yield job.run(seed_block, {"v": 3})
        for i in range(12):
            if i == 5:
                box["cluster"].controller.deliver(P.ManagerDirective(evict))
            if i == 9:
                box["cluster"].controller.deliver(P.ManagerDirective(restore))
            yield job.run(iter_block)

    cluster = NimbusCluster(2, program, registry=combine_registry(),
                            use_templates=True)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e5)
    expected = reference(12)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    # after restore, the original version-0 templates are current again
    assert cluster.controller.current_version["iter"] == 0
    # eviction regenerated both installed blocks (seed + iter) once; the
    # restore reused cached version-0 templates instead of regenerating
    assert cluster.metrics.count("worker_template_regenerations") == 2
    # worker halves for version 0 are still cached on both workers
    assert cluster.workers[0].has_template("iter", 0)
    assert cluster.workers[1].has_template("iter", 0)


def test_cannot_evict_all_workers():
    cluster = NimbusCluster(2, lambda job: iter(()),
                            registry=combine_registry())
    with pytest.raises(RuntimeError):
        cluster.controller.evict_workers([0, 1])


def test_edit_cost_charged_per_operation():
    """Table 3: edit cost scales with the number of edit operations."""
    def migrate_one(controller):
        controller.migrate_tasks("iter", [(0, 1)])

    one = run_with_directives(8, directive_at=5, directive=migrate_one)

    def migrate_two(controller):
        controller.edit_threshold = 0.5
        controller.migrate_tasks("iter", [(0, 1), (2, 1)])

    two = run_with_directives(8, directive_at=5, directive=migrate_two)
    assert two.metrics.count("edits_applied") == 2 * one.metrics.count(
        "edits_applied")
