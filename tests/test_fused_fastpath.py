"""Fused fast-path equivalence: batching and fusion are invisible.

``REPRO_FUSED_CHAINS`` gates three wall-clock-only mechanisms — fused
actor drain chains (``Actor._drain`` + ``Simulator.try_advance``), the
trusted-transport send path (no retransmission bookkeeping while the
network is provably lossless), and worker task-start cohorts. All of them
must leave every *virtual* observable bit-identical: virtual end time,
every metrics counter, and the final value of every data object. Event
counts are the one legitimate difference — the trusted transport elides
retransmission-timer wakes that genuinely never fire — so these sweeps
compare everything except ``events_run`` (and assert the fused count
never exceeds the unfused one).

Mirrors the ``REPRO_COMPILED_CROSS_CHECK`` suite: seeded random-program
sweeps fused on vs off, under chaos, with the rebalancer on, across
co-scheduled tenants, and in cross-check mode.
"""

import pytest

from repro.chaos import PROFILES, FaultPlan
from repro.nimbus import NimbusCluster
from repro.sim import fastpath

from .helpers import (
    combine_registry,
    random_combine_schedule,
    run_lr,
    simple_define,
    virtual_results,
    worker_values,
)

NUM_OBJECTS = 8
OIDS = list(range(1, NUM_OBJECTS + 1))
SEEDS = range(10)


def _set_fused(monkeypatch, fused):
    monkeypatch.setenv("REPRO_FUSED_CHAINS", "1" if fused else "0")


def _run(seed, chaos_profile=None, num_workers=3):
    """One random combine program; virtual observables + event count.

    The env flags are read at Actor construction, so the caller must set
    ``REPRO_FUSED_CHAINS`` before this builds the cluster.
    """
    seed_block, params, blocks, iterations = random_combine_schedule(
        seed, OIDS)

    def program(job):
        yield job.define(simple_define(
            {oid: (f"o{oid}", 8) for oid in OIDS}))
        yield job.run(seed_block, params)
        for _ in range(iterations):
            for block in blocks:
                yield job.run(block)

    kwargs = {}
    if chaos_profile is not None:
        kwargs["chaos_plan"] = FaultPlan.from_profile(chaos_profile,
                                                      seed=seed)
    cluster = NimbusCluster(num_workers, program,
                            registry=combine_registry(), **kwargs)
    cluster.run_until_finished(max_seconds=1e6)
    virtuals = (
        cluster.metrics.counters_snapshot(),
        cluster.sim.now,
        worker_values(cluster, OIDS),
    )
    return virtuals, cluster.sim.events_run


def test_fastpath_flags_read_environment(monkeypatch):
    monkeypatch.delenv("REPRO_FUSED_CHAINS", raising=False)
    assert fastpath.enabled_default()
    for off in ("0", "", "false", "no"):
        monkeypatch.setenv("REPRO_FUSED_CHAINS", off)
        assert not fastpath.enabled_default()
    monkeypatch.setenv("REPRO_FUSED_CHAINS", "1")
    assert fastpath.enabled_default()
    monkeypatch.delenv("REPRO_FUSED_CROSS_CHECK", raising=False)
    assert not fastpath.cross_check_enabled()
    monkeypatch.setenv("REPRO_FUSED_CROSS_CHECK", "1")
    assert fastpath.cross_check_enabled()


@pytest.mark.parametrize("seed", SEEDS)
def test_fused_matches_unfused(monkeypatch, seed):
    _set_fused(monkeypatch, True)
    fused, fused_events = _run(seed)
    _set_fused(monkeypatch, False)
    unfused, unfused_events = _run(seed)
    assert fused == unfused, f"seed {seed}: virtual results diverged"
    assert fused_events <= unfused_events, \
        f"seed {seed}: fusion may only elide events, never add them"


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", [3, 11])
def test_fused_matches_unfused_under_chaos(monkeypatch, profile, seed):
    # chaos networks are never lossless, so this exercises drain fusion
    # and task cohorts with the trusted transport forced off
    _set_fused(monkeypatch, True)
    fused, fused_events = _run(seed, chaos_profile=profile)
    _set_fused(monkeypatch, False)
    unfused, unfused_events = _run(seed, chaos_profile=profile)
    assert fused == unfused, f"seed {seed} profile {profile}"
    assert fused_events <= unfused_events


def _lr_virtuals(cluster):
    mean_iter, now, _events, counters = virtual_results(
        cluster, "lr.iteration", skip=4)
    return mean_iter, now, counters


@pytest.mark.parametrize("seed", [0, 5])
def test_fused_lr_with_rebalancer_on(monkeypatch, seed):
    scales = {seed % 4: 3.0}
    _set_fused(monkeypatch, True)
    fused = _lr_virtuals(run_lr(seed=seed, rebalance=True,
                                straggler_scales=scales))
    _set_fused(monkeypatch, False)
    unfused = _lr_virtuals(run_lr(seed=seed, rebalance=True,
                                  straggler_scales=scales))
    assert fused == unfused, f"seed {seed}: rebalancer run diverged"


@pytest.mark.parametrize("seed", [1, 7])
def test_fused_multitenant_pair_identical(monkeypatch, seed):
    from .test_multitenant import run_pair, small_lr_app

    app = small_lr_app(seed=seed)
    _set_fused(monkeypatch, True)
    fused = run_pair(app, seed=seed)
    _set_fused(monkeypatch, False)
    unfused = run_pair(app, seed=seed)
    assert fused == unfused, f"seed {seed}: co-tenant values diverged"


def test_cross_check_mode_validates_every_fused_hop(monkeypatch):
    """REPRO_FUSED_CROSS_CHECK re-derives each fused drain hop's safety
    from the raw event queues; a clean run means they all agreed."""
    monkeypatch.setenv("REPRO_FUSED_CROSS_CHECK", "1")
    _set_fused(monkeypatch, True)
    checked, _events = _run(7)
    monkeypatch.delenv("REPRO_FUSED_CROSS_CHECK")
    _set_fused(monkeypatch, False)
    unfused, _events = _run(7)
    assert checked == unfused, "cross-check seed 7"


def test_trusted_transport_stays_off_after_partition(monkeypatch):
    """A partition flips Network.lossless off permanently, so the fused
    send path can never race a heal."""
    from repro.sim.engine import Simulator
    from repro.sim.network import Network

    net = Network(Simulator())
    assert net.lossless
    net.partition("w0")
    net.heal("w0")
    assert not net.lossless
