"""Regression tests for dynamic-scheduling lifecycle bugs.

Three bugs found while closing the Fig. 9/10 loop, each with the failing
scenario it was found under:

1. **stale pending edits** — ``migrate_tasks`` queues worker-half edit
   ops that ship with the next instantiation; if an eviction (and its
   regeneration) landed first, the queued ops survived, and a later
   restore could resurrect the cached pre-edit worker halves while the
   controller half already contained the migration.
2. **eviction left stale replicas** — ``evict_workers`` re-homed objects
   without relocation copies, and left queued edit ops addressed to the
   evicted workers.
3. **bare KeyError** — ``migrate_tasks`` before worker templates exist
   crashed on an internal lookup instead of failing descriptively (no
   template at all) or falling back to a plain reassignment (template
   captured, worker halves not yet generated).

Plus the lifecycle bugs the elastic autoscaler (DESIGN.md §15) flushed
out: the load EWMA retained entries for departed workers and had no
arrival gating, and ``evict_workers`` could mutate state before
rejecting an impossible eviction.
"""

import pytest

from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import combine_registry, simple_define, worker_values
from .test_dynamic import ACC, DATA, OUT, blocks, reference, run_with_directives


def run_two_directives(iterations, at1, d1, at2, d2, num_workers=2):
    """Like run_with_directives, but with two delivery points."""
    seed_block, iter_block = blocks()
    objects = {oid: (f"o{oid}", 8) for oid in DATA + OUT + [ACC]}
    box = {}

    def program(job):
        yield job.define(simple_define(objects))
        yield job.run(seed_block, {"v": 3})
        for i in range(iterations):
            if i == at1:
                box["cluster"].controller.deliver(P.ManagerDirective(d1))
            if i == at2:
                box["cluster"].controller.deliver(P.ManagerDirective(d2))
            yield job.run(iter_block)

    cluster = NimbusCluster(num_workers, program, registry=combine_registry(),
                            use_templates=True)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e5)
    return cluster


# ---------------------------------------------------------------------------
# Bug 1: pending edits must not survive regeneration / eviction / restore
# ---------------------------------------------------------------------------
def test_migrate_then_evict_then_restore_stays_consistent():
    state = {}

    def migrate_then_evict(controller):
        controller.edit_threshold = 0.5
        # queue worker-half edit ops (they ship on the *next* instantiation)
        assert controller.migrate_tasks("iter", [(0, 1)]) == "edits"
        assert controller.pending_edits
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        # the eviction regenerates before the queued ops ever ship: they
        # must be dropped, along with the now-divergent cached version
        controller.evict_workers([1])
        assert not controller.pending_edits
        assert ("iter", 0) not in controller.worker_templates

    def restore(controller):
        controller.restore_workers([1], state["placement"],
                                   state["versions"])

    cluster = run_two_directives(12, 5, migrate_then_evict, 9, restore)
    expected = reference(12)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    controller = cluster.controller
    assert not controller.pending_edits
    # the restore could not reuse the invalidated version-0 cache: it
    # re-installed fresh templates instead of resurrecting stale halves
    assert controller.current_version["iter"] == 2
    # evict regenerated seed + iter; restore regenerated iter once more
    assert cluster.metrics.count("worker_template_regenerations") == 3


def test_restore_without_divergence_still_reuses_cache():
    """The bug-1 fix must not regress the happy path: a restore whose
    snapshot version was never edited reuses the cached templates."""
    state = {}

    def evict(controller):
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        controller.evict_workers([1])

    def restore(controller):
        controller.restore_workers([1], state["placement"],
                                   state["versions"])

    cluster = run_two_directives(12, 5, evict, 9, restore)
    expected = reference(12)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    assert cluster.controller.current_version["iter"] == 0
    assert cluster.metrics.count("worker_template_regenerations") == 2


# ---------------------------------------------------------------------------
# Bug 2: eviction must relocate data and quiesce the evicted workers
# ---------------------------------------------------------------------------
def test_eviction_relocates_objects_and_quiesces_evicted_worker():
    sends = []

    def evict(controller):
        controller.edit_threshold = 0.5
        # queue edit ops addressed to worker 1, then evict it: the ops
        # must never ship (regeneration drops them)
        assert controller.migrate_tasks("iter", [(0, 1)]) == "edits"
        before = controller.snapshot_placement()
        controller.evict_workers([1])
        after = controller.snapshot_placement()
        moved = [oid for oid in before if before[oid] != after[oid]]
        assert moved, "eviction re-homed nothing"
        # survivors physically hold every object they now home
        for oid in moved:
            assert controller.directory.is_fresh(oid, after[oid]), \
                f"object {oid} re-homed without a relocation copy"
        # from here on, nothing may target the evicted worker
        orig = controller.send_reliable

        def spy(dest, msg):
            sends.append((dest, type(msg).__name__))
            return orig(dest, msg)

        controller.send_reliable = spy

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    assert cluster.metrics.count("relocation_copies") > 0
    evicted = cluster.workers[1]
    offenders = [name for dest, name in sends if dest is evicted]
    assert not offenders, \
        f"control messages sent to the evicted worker: {offenders}"


# ---------------------------------------------------------------------------
# Bug 3: migrate_tasks before PHASE_WT_GENERATED
# ---------------------------------------------------------------------------
def test_migrate_before_capture_raises_descriptive_error():
    cluster = NimbusCluster(2, lambda job: iter(()),
                            registry=combine_registry())
    with pytest.raises(KeyError) as exc:
        cluster.controller.migrate_tasks("iter", [(0, 1)])
    assert "no controller template captured" in str(exc.value)


def test_migrate_before_worker_templates_falls_back_to_reassign():
    def migrate(controller):
        # one templated run so far: controller template captured, worker
        # halves not yet generated
        assert controller.phase["iter"] < controller.PHASE_WT_GENERATED
        assert controller.migrate_tasks("iter", [(0, 1)]) == "reassign"

    cluster = run_with_directives(8, directive_at=1, directive=migrate)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    assert cluster.metrics.count("migrations_reassigned") == 1
    # the reassignment stuck: worker templates were generated from the
    # updated assignment, so task 0 runs on worker 1
    version = cluster.controller.current_version["iter"]
    wts = cluster.controller.worker_templates[("iter", version)]
    assert wts.task_locations[0][0] == 1


# ---------------------------------------------------------------------------
# Autoscaler-flushed lifecycle bugs: load-signal churn (bug 2) and
# evict_workers preconditions (bug 3)
# ---------------------------------------------------------------------------
def test_load_tracker_forgets_departed_and_gates_arrivals():
    """Regression (autoscaler bugfix 2, unit): the load EWMA must follow
    worker-set churn. Before the fix a departed worker's entries lived
    forever — any policy summing ``tracker.load`` over stale keys booked
    load onto dead workers — and there was no arrival story at all."""
    from repro.sched.rebalance import LoadTracker

    tracker = LoadTracker()
    for w in (0, 1, 2):
        for _ in range(3):
            tracker.observe(w, 1.0, {})
    assert tracker.min_samples([0, 1, 2]) == 3
    tracker.drop_worker(2)
    assert 2 not in tracker.load
    assert 2 not in tracker.samples
    # an arrival has no signal yet: min_samples pins the whole set at 0,
    # so sample-gated policies wait for real post-change observations
    assert tracker.min_samples([0, 1, 3]) == 0


def test_eviction_drops_load_signal_for_departed_workers():
    """Regression (autoscaler bugfix 2, integration): a mid-run eviction
    followed by continued rebalancer observation leaves no EWMA entry —
    controller-wide or per-block — for the departed worker."""
    from repro.apps import LRApp, LRSpec

    spec = LRSpec(num_workers=4, iterations=16, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=0, rebalance=True)
    ctrl = cluster.controller
    state = {}

    def evict():
        state["had_signal"] = 3 in ctrl.load_tracker.load
        ctrl.evict_workers([3])
        state["after_evict"] = dict(ctrl.load_tracker.load)

    cluster.sim.schedule_at(2.0, evict)
    cluster.run_until_finished(max_seconds=1e6)
    assert state["had_signal"], "no load signal for worker 3 before evict"
    assert 3 not in state["after_evict"]
    # ... and the signal never came back, even though the run (and the
    # rebalancer's per-block observation) continued for many iterations
    assert set(ctrl.load_tracker.load) <= ctrl.live_workers
    assert set(ctrl.load_tracker.samples) <= ctrl.live_workers
    for tracker in cluster.rebalancer.trackers.values():
        assert set(tracker.load) <= ctrl.live_workers


def _evict_snapshot(controller):
    return (set(controller.live_workers),
            controller.snapshot_placement(),
            controller.snapshot_versions())


def test_evict_unknown_worker_raises_before_mutating():
    """Regression (autoscaler bugfix 3): every evict_workers precondition
    failure must be descriptive and must fire before any state mutates."""
    def evict(controller):
        before = _evict_snapshot(controller)
        with pytest.raises(RuntimeError) as exc:
            controller.evict_workers([0, 7])
        assert "not in the live set" in str(exc.value)
        assert "no state was changed" in str(exc.value)
        assert _evict_snapshot(controller) == before

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]


def test_evict_full_live_set_raises_before_mutating():
    def evict(controller):
        before = _evict_snapshot(controller)
        with pytest.raises(RuntimeError) as exc:
            controller.evict_workers([0, 1])
        assert "cannot evict every worker" in str(exc.value)
        assert _evict_snapshot(controller) == before

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]


def test_evict_below_minimum_raises_before_mutating():
    """The autoscaler's policy floor (min_live_workers) applies to manual
    evictions too, and failing it mutates nothing."""
    def evict(controller):
        controller.min_live_workers = 2
        before = _evict_snapshot(controller)
        with pytest.raises(RuntimeError) as exc:
            controller.evict_workers([1])
        assert "minimum live worker count" in str(exc.value)
        assert _evict_snapshot(controller) == before
        controller.min_live_workers = 1  # let the run finish unharmed

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
