"""Regression tests for dynamic-scheduling lifecycle bugs.

Three bugs found while closing the Fig. 9/10 loop, each with the failing
scenario it was found under:

1. **stale pending edits** — ``migrate_tasks`` queues worker-half edit
   ops that ship with the next instantiation; if an eviction (and its
   regeneration) landed first, the queued ops survived, and a later
   restore could resurrect the cached pre-edit worker halves while the
   controller half already contained the migration.
2. **eviction left stale replicas** — ``evict_workers`` re-homed objects
   without relocation copies, and left queued edit ops addressed to the
   evicted workers.
3. **bare KeyError** — ``migrate_tasks`` before worker templates exist
   crashed on an internal lookup instead of failing descriptively (no
   template at all) or falling back to a plain reassignment (template
   captured, worker halves not yet generated).

Plus the lifecycle bugs the elastic autoscaler (DESIGN.md §15) flushed
out: the load EWMA retained entries for departed workers and had no
arrival gating, and ``evict_workers`` could mutate state before
rejecting an impossible eviction.
"""

import pytest

from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import combine_registry, simple_define, worker_values
from .test_dynamic import ACC, DATA, OUT, blocks, reference, run_with_directives


def run_two_directives(iterations, at1, d1, at2, d2, num_workers=2):
    """Like run_with_directives, but with two delivery points."""
    seed_block, iter_block = blocks()
    objects = {oid: (f"o{oid}", 8) for oid in DATA + OUT + [ACC]}
    box = {}

    def program(job):
        yield job.define(simple_define(objects))
        yield job.run(seed_block, {"v": 3})
        for i in range(iterations):
            if i == at1:
                box["cluster"].controller.deliver(P.ManagerDirective(d1))
            if i == at2:
                box["cluster"].controller.deliver(P.ManagerDirective(d2))
            yield job.run(iter_block)

    cluster = NimbusCluster(num_workers, program, registry=combine_registry(),
                            use_templates=True)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e5)
    return cluster


# ---------------------------------------------------------------------------
# Bug 1: pending edits must not survive regeneration / eviction / restore
# ---------------------------------------------------------------------------
def test_migrate_then_evict_then_restore_stays_consistent():
    state = {}

    def migrate_then_evict(controller):
        controller.edit_threshold = 0.5
        # queue worker-half edit ops (they ship on the *next* instantiation)
        assert controller.migrate_tasks("iter", [(0, 1)]) == "edits"
        assert controller.pending_edits
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        # the eviction regenerates before the queued ops ever ship: they
        # must be dropped, along with the now-divergent cached version
        controller.evict_workers([1])
        assert not controller.pending_edits
        assert ("iter", 0) not in controller.worker_templates

    def restore(controller):
        controller.restore_workers([1], state["placement"],
                                   state["versions"])

    cluster = run_two_directives(12, 5, migrate_then_evict, 9, restore)
    expected = reference(12)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    controller = cluster.controller
    assert not controller.pending_edits
    # the restore could not reuse the invalidated version-0 cache: it
    # re-installed fresh templates instead of resurrecting stale halves
    assert controller.current_version["iter"] == 2
    # evict regenerated seed + iter; restore regenerated iter once more
    assert cluster.metrics.count("worker_template_regenerations") == 3


def test_restore_without_divergence_still_reuses_cache():
    """The bug-1 fix must not regress the happy path: a restore whose
    snapshot version was never edited reuses the cached templates."""
    state = {}

    def evict(controller):
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        controller.evict_workers([1])

    def restore(controller):
        controller.restore_workers([1], state["placement"],
                                   state["versions"])

    cluster = run_two_directives(12, 5, evict, 9, restore)
    expected = reference(12)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    assert cluster.controller.current_version["iter"] == 0
    assert cluster.metrics.count("worker_template_regenerations") == 2


# ---------------------------------------------------------------------------
# Bug 2: eviction must relocate data and quiesce the evicted workers
# ---------------------------------------------------------------------------
def test_eviction_relocates_objects_and_quiesces_evicted_worker():
    sends = []

    def evict(controller):
        controller.edit_threshold = 0.5
        # queue edit ops addressed to worker 1, then evict it: the ops
        # must never ship (regeneration drops them)
        assert controller.migrate_tasks("iter", [(0, 1)]) == "edits"
        before = controller.snapshot_placement()
        controller.evict_workers([1])
        after = controller.snapshot_placement()
        moved = [oid for oid in before if before[oid] != after[oid]]
        assert moved, "eviction re-homed nothing"
        # survivors physically hold every object they now home
        for oid in moved:
            assert controller.directory.is_fresh(oid, after[oid]), \
                f"object {oid} re-homed without a relocation copy"
        # from here on, nothing may target the evicted worker
        orig = controller.send_reliable

        def spy(dest, msg):
            sends.append((dest, type(msg).__name__))
            return orig(dest, msg)

        controller.send_reliable = spy

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    assert cluster.metrics.count("relocation_copies") > 0
    evicted = cluster.workers[1]
    offenders = [name for dest, name in sends if dest is evicted]
    assert not offenders, \
        f"control messages sent to the evicted worker: {offenders}"


# ---------------------------------------------------------------------------
# Bug 3: migrate_tasks before PHASE_WT_GENERATED
# ---------------------------------------------------------------------------
def test_migrate_before_capture_raises_descriptive_error():
    cluster = NimbusCluster(2, lambda job: iter(()),
                            registry=combine_registry())
    with pytest.raises(KeyError) as exc:
        cluster.controller.migrate_tasks("iter", [(0, 1)])
    assert "no controller template captured" in str(exc.value)


def test_migrate_before_worker_templates_falls_back_to_reassign():
    def migrate(controller):
        # one templated run so far: controller template captured, worker
        # halves not yet generated
        assert controller.phase["iter"] < controller.PHASE_WT_GENERATED
        assert controller.migrate_tasks("iter", [(0, 1)]) == "reassign"

    cluster = run_with_directives(8, directive_at=1, directive=migrate)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    assert cluster.metrics.count("migrations_reassigned") == 1
    # the reassignment stuck: worker templates were generated from the
    # updated assignment, so task 0 runs on worker 1
    version = cluster.controller.current_version["iter"]
    wts = cluster.controller.worker_templates[("iter", version)]
    assert wts.task_locations[0][0] == 1


# ---------------------------------------------------------------------------
# Autoscaler-flushed lifecycle bugs: load-signal churn (bug 2) and
# evict_workers preconditions (bug 3)
# ---------------------------------------------------------------------------
def test_load_tracker_forgets_departed_and_gates_arrivals():
    """Regression (autoscaler bugfix 2, unit): the load EWMA must follow
    worker-set churn. Before the fix a departed worker's entries lived
    forever — any policy summing ``tracker.load`` over stale keys booked
    load onto dead workers — and there was no arrival story at all."""
    from repro.sched.rebalance import LoadTracker

    tracker = LoadTracker()
    for w in (0, 1, 2):
        for _ in range(3):
            tracker.observe(w, 1.0, {})
    assert tracker.min_samples([0, 1, 2]) == 3
    tracker.drop_worker(2)
    assert 2 not in tracker.load
    assert 2 not in tracker.samples
    # an arrival has no signal yet: min_samples pins the whole set at 0,
    # so sample-gated policies wait for real post-change observations
    assert tracker.min_samples([0, 1, 3]) == 0


def test_eviction_drops_load_signal_for_departed_workers():
    """Regression (autoscaler bugfix 2, integration): a mid-run eviction
    followed by continued rebalancer observation leaves no EWMA entry —
    controller-wide or per-block — for the departed worker."""
    from repro.apps import LRApp, LRSpec

    spec = LRSpec(num_workers=4, iterations=16, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=0, rebalance=True)
    ctrl = cluster.controller
    state = {}

    def evict():
        state["had_signal"] = 3 in ctrl.load_tracker.load
        ctrl.evict_workers([3])
        state["after_evict"] = dict(ctrl.load_tracker.load)

    cluster.sim.schedule_at(2.0, evict)
    cluster.run_until_finished(max_seconds=1e6)
    assert state["had_signal"], "no load signal for worker 3 before evict"
    assert 3 not in state["after_evict"]
    # ... and the signal never came back, even though the run (and the
    # rebalancer's per-block observation) continued for many iterations
    assert set(ctrl.load_tracker.load) <= ctrl.live_workers
    assert set(ctrl.load_tracker.samples) <= ctrl.live_workers
    for tracker in cluster.rebalancer.trackers.values():
        assert set(tracker.load) <= ctrl.live_workers


def _evict_snapshot(controller):
    return (set(controller.live_workers),
            controller.snapshot_placement(),
            controller.snapshot_versions())


def test_evict_unknown_worker_raises_before_mutating():
    """Regression (autoscaler bugfix 3): every evict_workers precondition
    failure must be descriptive and must fire before any state mutates."""
    def evict(controller):
        before = _evict_snapshot(controller)
        with pytest.raises(RuntimeError) as exc:
            controller.evict_workers([0, 7])
        assert "not in the live set" in str(exc.value)
        assert "no state was changed" in str(exc.value)
        assert _evict_snapshot(controller) == before

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]


def test_evict_full_live_set_raises_before_mutating():
    def evict(controller):
        before = _evict_snapshot(controller)
        with pytest.raises(RuntimeError) as exc:
            controller.evict_workers([0, 1])
        assert "cannot evict every worker" in str(exc.value)
        assert _evict_snapshot(controller) == before

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]


def test_evict_below_minimum_raises_before_mutating():
    """The autoscaler's policy floor (min_live_workers) applies to manual
    evictions too, and failing it mutates nothing."""
    def evict(controller):
        controller.min_live_workers = 2
        before = _evict_snapshot(controller)
        with pytest.raises(RuntimeError) as exc:
            controller.evict_workers([1])
        assert "minimum live worker count" in str(exc.value)
        assert _evict_snapshot(controller) == before
        controller.min_live_workers = 1  # let the run finish unharmed

    cluster = run_with_directives(8, directive_at=4, directive=evict)
    expected = reference(8)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]


# ---------------------------------------------------------------------------
# Cross-feature lifecycle sweep (sharded control plane PR)
#
# Three races between features that each worked alone:
#
# A. ``ReleaseJob`` racing an in-flight ``SelfScheduleWindow`` — a
#    shard-relayed window could land after the release scrubbed the
#    job's templates and KeyError the worker (or leak a parked window).
# B. serve + autoscale — a job admitted from the wait queue while the
#    autoscaler drains a worker used to place partitions on the
#    DRAINING node, parking fresh work on a machine on its way out.
# C. ``pm_epoch`` monotonicity across worker churn — a stale
#    retransmitted ``EpochUpdate`` (sharded relays and churn-window
#    retransmits use more than one channel) could regress a worker's
#    epoch and wrongly stall its re-granted windows; late joiners
#    missed earlier broadcasts entirely.
# ---------------------------------------------------------------------------
def test_release_mid_window_scrubs_parked_and_late_windows():
    """Bug A, worker side: release closes every window *first*.

    A window parked behind its causal barrier is purged by the release,
    and a window that was already in flight when the release landed is
    dropped (counted) instead of raising on the scrubbed template."""
    cluster = run_with_directives(2)
    w = cluster.workers[0]
    m = cluster.metrics

    # a shard-relayed window parked behind its causal barrier
    w._on_self_schedule(P.SelfScheduleWindow(
        7, "iter", 0, 0, [(100, 0, 0, {})], job_id=5,
        reply_to="shard-0", barrier_seq=10 ** 9))
    assert any(win.job_id == 5 for win in w._barrier_windows)

    w._on_release_job(P.ReleaseJob(5, []))
    assert not any(win.job_id == 5 for win in w._barrier_windows)
    assert not any(k[0] == 5 for k in w._grants)
    assert not any(k[0] == 5 for k in w._deferred_windows)

    # a window that was already in flight when the release landed:
    # pre-fix this raised KeyError on the scrubbed template (direct
    # channel) or parked forever as a deferred window (shard relay)
    before = m.count("self_schedule.released_window_drops")
    w._on_self_schedule(P.SelfScheduleWindow(
        8, "iter", 0, 0, [(101, 0, 0, {})], job_id=5, reply_to="shard-0"))
    assert m.count("self_schedule.released_window_drops") == before + 1
    assert (5, 8) not in w._grants
    assert not any(k[0] == 5 for k in w._deferred_windows)


def test_job_registration_excludes_draining_workers():
    """Bug B, placement seam: ``register_job`` must not hand a new
    tenant partitions on a DRAINING worker (pre-fix the placement order
    was ``sorted(live_workers)``, drains included)."""
    cluster = run_with_directives(4, num_workers=3)
    ctrl = cluster.controller

    ctrl.draining_workers.add(2)
    ctx = ctrl.register_job(99, driver=None, metrics=cluster.metrics)
    assert 2 not in ctx.placement.workers
    assert ctx.placement.workers, "job left with nowhere to place"

    # degenerate case: everything draining falls back to the live set
    # rather than an empty placement
    ctrl.draining_workers.update(ctrl.live_workers)
    ctx2 = ctrl.register_job(100, driver=None, metrics=cluster.metrics)
    assert sorted(ctx2.placement.workers) == sorted(ctrl.live_workers)
    ctrl.draining_workers.clear()


def test_job_admitted_mid_drain_lands_off_the_draining_worker():
    """Bug B, end to end: serve + autoscale. A job admitted in the same
    tick the autoscaler begins a scale-down places only on non-DRAINING
    workers, and both tenants still compute solo-identical values."""
    from .test_multitenant import (
        job_observables, run_solo, serve_cluster, small_lr_app)

    app = small_lr_app(seed=1, workers=4)
    solo = run_solo(app, seed=1)

    cluster = serve_cluster(app, seed=1, autoscale=True)
    a = cluster.jobs.submit(app.program(blocking=False))
    box = {}

    def drain_and_admit():
        cluster.autoscaler._begin_scale_down(1)
        box["draining"] = set(cluster.controller.draining_workers)
        assert box["draining"], "scale-down marked nothing DRAINING"
        box["record"] = cluster.jobs.submit(app.program(blocking=False))
        ctx = cluster.controller.jobs[box["record"].job_id]
        box["placement"] = set(ctx.placement.workers)

    # mid-run for this app: the whole solo run ends around t=0.025
    cluster.sim.schedule_at(0.01, drain_and_admit)
    cluster.run_until_jobs_finished(max_seconds=1e6)

    assert box["placement"].isdisjoint(box["draining"]), (
        f"job placed on DRAINING worker(s) "
        f"{box['placement'] & box['draining']}")
    assert box["record"].state == "finished"
    assert job_observables(cluster, a.job_id, app) == solo
    assert job_observables(cluster, box["record"].job_id, app) == solo


def test_stale_epoch_update_does_not_regress_pm_epoch():
    """Bug C, worker side: epoch accepts are monotone. A stale
    retransmit arriving after a newer broadcast (possible once epoch
    signals travel more than one channel) must not roll the epoch back
    — pre-fix the handler assigned unconditionally."""
    cluster = run_with_directives(2)
    w = cluster.workers[0]

    w.handle(P.EpochUpdate(5))
    assert w._pm_epoch == 5
    w.handle(P.EpochUpdate(3))  # stale retransmit on a second channel
    assert w._pm_epoch == 5, "stale EpochUpdate regressed the epoch"
    w.handle(P.EpochUpdate(6))
    assert w._pm_epoch == 6


def test_provisioned_worker_syncs_epoch_after_churn():
    """Bug C, end to end: epoch bump, then a late joiner. The new
    worker missed the broadcast; ``add_worker`` must sync it (pre-fix
    it joined at epoch 0 behind the cluster) and the run's values stay
    bit-identical to an undisturbed baseline."""
    from repro.apps import LRApp, LRSpec

    from .helpers import computed_values, run_lr

    baseline = computed_values(run_lr(iterations=16))

    spec = LRSpec(num_workers=4, iterations=16, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=0, mode="sharded")
    ctrl = cluster.controller
    box = {}

    cluster.sim.schedule_at(0.5, ctrl.bump_partition_epoch)

    def join():
        worker = cluster.provision_worker()
        ctrl.add_worker(worker.worker_id, worker)
        box["worker"] = worker

    cluster.sim.schedule_at(0.8, join)
    cluster.run_until_finished(max_seconds=1e6)

    assert ctrl.pm_epoch >= 1
    assert box["worker"]._pm_epoch == ctrl.pm_epoch, (
        "late joiner never learned the current partition-map epoch")
    assert computed_values(cluster) == baseline
