"""Unit tests for worker-template generation and instantiation (Fig. 5b)."""

import pytest

from repro.core.controller_template import ControllerTemplate
from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.core.worker_template import (
    WorkerHalf,
    copy_tag,
    generate_worker_templates,
    instantiate_entries,
)
from repro.nimbus.commands import CommandKind

SIZES = {oid: 64 for oid in range(1, 20)}


def gen(block, assignment, sizes=SIZES):
    template = ControllerTemplate.from_block(block, assignment)
    return generate_worker_templates(template, sizes)


def producer_consumer_block():
    return BlockSpec("pc", [
        StageSpec("produce", [LogicalTask("f", read=(), write=(1,))]),
        StageSpec("consume", [LogicalTask("g", read=(1,), write=(2,))]),
    ])


def test_local_dependency_no_copies():
    wts = gen(producer_consumer_block(), [0, 0])
    entries = wts.entries[0]
    assert [e.kind for e in entries] == [CommandKind.TASK, CommandKind.TASK]
    assert entries[1].before == (0,)
    assert wts.num_commands() == 2


def test_structural_copy_between_workers():
    wts = gen(producer_consumer_block(), [0, 1])
    kinds0 = [e.kind for e in wts.entries[0]]
    kinds1 = [e.kind for e in wts.entries[1]]
    assert kinds0 == [CommandKind.TASK, CommandKind.SEND]
    assert kinds1 == [CommandKind.RECV, CommandKind.TASK]
    send = wts.entries[0][1]
    recv = wts.entries[1][0]
    assert send.dst_worker == 1 and send.dst_index == recv.index
    assert recv.src_worker == 0
    # the consumer depends on the receive
    assert wts.entries[1][1].before == (0,)
    # copies carry the object size for the network model
    assert send.size_bytes == 64


def test_copy_reused_for_multiple_consumers_on_same_worker():
    block = BlockSpec("multi", [
        StageSpec("p", [LogicalTask("f", read=(), write=(1,))]),
        StageSpec("c", [LogicalTask("g", read=(1,), write=(2,)),
                        LogicalTask("g", read=(1,), write=(3,))]),
    ])
    wts = gen(block, [0, 1, 1])
    sends = [e for e in wts.entries[0] if e.kind == CommandKind.SEND]
    assert len(sends) == 1  # one copy feeds both consumers


def test_preconditions_from_pre_block_reads():
    block = BlockSpec("pre", [
        StageSpec("s", [LogicalTask("g", read=(1, 2), write=(3,))]),
    ])
    wts = gen(block, [0])
    assert wts.preconditions == {0: frozenset({1, 2})}


def test_objects_written_before_read_are_not_preconditions():
    wts = gen(producer_consumer_block(), [0, 0])
    assert wts.preconditions.get(0, frozenset()) == frozenset()


def test_postcondition_closure_restores_preconditions():
    """The paper's param example: read everywhere, written at the end."""
    block = BlockSpec("loop", [
        StageSpec("grad", [LogicalTask("g", read=(10, 1), write=(2,)),
                           LogicalTask("g", read=(10, 3), write=(4,))]),
        StageSpec("update", [LogicalTask("u", read=(2, 4, 10), write=(10,))]),
    ])
    # gradient tasks on workers 0 and 1; update on worker 0
    wts = gen(block, [0, 1, 0])
    # object 10 is a precondition on both workers and is rewritten at the
    # end on worker 0 — the closure must ship it back to worker 1
    assert 10 in wts.preconditions[1]
    sends = [e for e in wts.entries[0]
             if e.kind == CommandKind.SEND and e.read == (10,)]
    assert sends, "closure copy of object 10 missing"
    assert wts.delta.final_holders[10] >= {0, 1}


def test_directory_delta_counts_writes():
    block = BlockSpec("wc", [
        StageSpec("a", [LogicalTask("f", read=(), write=(1,))]),
        StageSpec("b", [LogicalTask("f", read=(1,), write=(1,))]),
    ])
    wts = gen(block, [0, 0])
    assert wts.delta.write_counts[1] == 2
    assert wts.delta.final_holders[1] == frozenset({0})


def test_report_flag_on_final_writer_of_returned_object():
    block = BlockSpec("ret", [
        StageSpec("a", [LogicalTask("f", read=(), write=(5,))]),
        StageSpec("b", [LogicalTask("f", read=(5,), write=(5,))]),
    ], returns={"x": 5})
    wts = gen(block, [0, 1])
    assert wts.report_entries == {1: [wts.task_locations[1][1]]}
    worker1_entries = wts.entries[1]
    reporters = [e for e in worker1_entries if e.report]
    assert len(reporters) == 1
    assert reporters[0].kind == CommandKind.TASK


def test_anti_dependency_local_readers_before_recv():
    """A RECV overwriting an object must wait for local readers of the old
    version (write-after-read)."""
    block = BlockSpec("war", [
        StageSpec("read_old", [LogicalTask("g", read=(1,), write=(2,))]),
        StageSpec("rewrite", [LogicalTask("f", read=(), write=(1,))]),
        StageSpec("read_new", [LogicalTask("g", read=(1,), write=(3,))]),
    ])
    # reader0 on worker 0; writer on worker 1; reader2 back on worker 0
    wts = gen(block, [0, 1, 0])
    recvs = [e for e in wts.entries[0] if e.kind == CommandKind.RECV]
    assert len(recvs) == 1
    # the recv overwrites object 1, so it must follow the stage-1 reader
    assert 0 in recvs[0].before


def test_task_locations_map():
    wts = gen(producer_consumer_block(), [0, 1])
    assert wts.task_locations[0] == (0, 0)
    assert wts.task_locations[1] == (1, 1)


def test_workers_and_counts():
    wts = gen(producer_consumer_block(), [0, 1])
    assert sorted(wts.workers()) == [0, 1]
    assert wts.entry_count(0) == 2
    assert wts.num_commands() == 4


class TestInstantiation:
    def make_half(self, assignment=(0, 1)):
        wts = gen(producer_consumer_block(), list(assignment))
        halves = {
            w: WorkerHalf("pc", 0, entries, [])
            for w, entries in wts.entries.items()
        }
        return wts, halves

    def test_cids_rebased_from_base(self):
        _wts, halves = self.make_half()
        commands = halves[0].instantiate(0, instance_id=7, cid_base=100,
                                         params={})
        assert [c.cid for c in commands] == [100, 101]
        assert commands[1].before == [100]  # the send follows the producer
        commands2 = halves[1].instantiate(1, instance_id=7, cid_base=200,
                                          params={})
        assert commands2[1].before == [200]  # task after its recv

    def test_copy_tags_match_across_workers(self):
        _wts, halves = self.make_half()
        send = halves[0].instantiate(0, 7, 100, {})[1]
        recv = halves[1].instantiate(1, 7, 200, {})[0]
        assert send.tag == recv.tag == copy_tag(7, 1, 0)

    def test_different_instances_different_tags(self):
        _wts, halves = self.make_half()
        first = halves[0].instantiate(0, 7, 100, {})[1]
        second = halves[0].instantiate(0, 8, 300, {})[1]
        assert first.tag != second.tag

    def test_params_resolved_through_slots(self):
        block = BlockSpec("p", [StageSpec("s", [
            LogicalTask("f", read=(), write=(1,), param_slot="alpha")])])
        wts = gen(block, [0])
        half = WorkerHalf("p", 0, wts.entries[0], [])
        cmd = half.instantiate(0, 1, 10, {"alpha": 3.5})[0]
        assert cmd.params == 3.5

    def test_tombstoned_entries_skipped_but_indices_reserved(self):
        _wts, halves = self.make_half((0, 0))
        half = halves[0]
        half.entries[0] = None
        commands = half.instantiate(0, 1, 100, {})
        assert [c.cid for c in commands] == [101]
        assert half.num_commands() == 1

    def test_unknown_kind_rejected(self):
        entry = list(gen(producer_consumer_block(), [0, 0]).entries[0])[0]
        entry.kind = CommandKind.SAVE
        with pytest.raises(ValueError):
            instantiate_entries([entry], 0, 1, 0, {})
