"""Regression tests for the metrics/network edge-case bug batch.

Four bugs fixed alongside the observability layer, each pinned here:

1. ``Metrics.begin`` silently overwrote an already-open interval with the
   same ``(name, key)``, leaking the first span and corrupting every
   downstream breakdown;
2. ``Network._link_free`` kept stale link reservations across
   ``partition()``/``heal()`` and chaos crash/restart, so the first
   transfer after recovery queued behind serialization time charged to a
   dead peer;
3. ``Network._deliver`` charged zero bytes for messages lacking
   ``size_bytes`` (a ``getattr`` default), silently exempting them from
   the bandwidth model — ``JobRestored`` rode that hole;
4. ``task_throughput`` returned 0.0 for a zero-length steady-state span,
   indistinguishable from a genuinely measured zero rate.
"""

import math

import pytest

from repro.analysis import task_throughput
from repro.chaos import ChaosNetwork, FaultPlan
from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P
from repro.sim.actor import Actor, Message
from repro.sim.engine import Simulator
from repro.sim.metrics import Metrics
from repro.sim.network import Network

from .helpers import combine_registry, simple_define


class Payload(Message):
    def __init__(self, tag, size_bytes):
        self.tag = tag
        self.size_bytes = size_bytes


class Sink(Actor):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def handle(self, msg):
        self.arrivals.append((self.sim.now, msg.tag))


def two_actor_net(net_cls=Network, plan=None, latency=1e-3, bandwidth=1e6):
    sim = Simulator()
    args = (sim,) if plan is None else (sim, plan)
    net = net_cls(*args, latency=latency, bandwidth=bandwidth)
    src = net.attach(Sink(sim, "src"))
    dst = net.attach(Sink(sim, "dst"))
    return sim, net, src, dst


# ---------------------------------------------------------------------------
# Bug 1: duplicate-open interval
# ---------------------------------------------------------------------------
def test_metrics_begin_rejects_duplicate_open_interval():
    metrics = Metrics()
    metrics.begin("iteration", 1.0, key=7)
    with pytest.raises(KeyError, match="already open"):
        metrics.begin("iteration", 2.0, key=7)
    # the original span survived the rejected re-open
    interval = metrics.end("iteration", 3.0, key=7)
    assert interval.start == 1.0 and interval.end == 3.0


def test_metrics_begin_allows_distinct_keys_and_reopen_after_end():
    metrics = Metrics()
    metrics.begin("iteration", 1.0, key=1)
    metrics.begin("iteration", 1.0, key=2)  # concurrent span, distinct key
    metrics.begin("other", 1.0, key=1)      # same key, distinct name
    metrics.end("iteration", 2.0, key=1)
    metrics.begin("iteration", 2.5, key=1)  # reopening after end is fine
    metrics.end("iteration", 3.0, key=1)
    assert metrics.durations("iteration") == [1.0, 0.5]


# ---------------------------------------------------------------------------
# Bug 2: stale link reservations across partition / crash
# ---------------------------------------------------------------------------
def test_partition_clears_link_reservations():
    sim, net, src, dst = two_actor_net()
    # a 2-second transfer books the src->dst link far into the future
    net.transmit(src, dst, Payload("big", size_bytes=2_000_000), depart=0.0)
    free, last_depart = net._link_free[("src", "dst")]
    assert free == pytest.approx(2.0)
    assert last_depart == pytest.approx(0.0)

    net.partition("dst")
    assert all("dst" not in key for key in net._link_free)

    # after healing, a new transfer is not queued behind the aborted one
    net.heal("dst")
    net.transmit(src, dst, Payload("small", size_bytes=1000), depart=0.0)
    sim.run()
    arrivals = [(t, tag) for t, tag in dst.arrivals if tag == "small"]
    assert arrivals == [(pytest.approx(1000 / 1e6 + 1e-3), "small")]


def test_scripted_pause_clears_reservations_mid_run():
    """The chaos "crash and restart" (pause_actor) goes through the same
    partition path, so an in-flight transfer to the paused actor must not
    delay the first message after the heal."""
    plan = FaultPlan(seed=0).pause_actor(at=0.5, actor="dst", duration=0.25)
    sim, net, src, dst = two_actor_net(ChaosNetwork, plan)
    plan.apply_scripted(sim, net, {})
    # booked just before the pause: would hold the link until t≈2.49
    sim.schedule_at(0.49, net.transmit, src, dst,
                    Payload("doomed", size_bytes=2_000_000), 0.49)
    sim.schedule_at(0.80, net.transmit, src, dst,
                    Payload("after-heal", size_bytes=1000), 0.80)
    sim.run()
    # the healed link must not inherit the aborted transfer's booking
    arrivals = dict((tag, t) for t, tag in dst.arrivals)
    assert arrivals["after-heal"] == pytest.approx(0.80 + 1000 / 1e6 + 1e-3)
    assert net._link_free[("src", "dst")][0] == pytest.approx(0.801)


def test_worker_crash_clears_its_link_reservations():
    """Worker.fail routes through Network.partition, so a crashed worker's
    half-sent copies release their link bookings immediately."""
    block = BlockSpec("blk", [StageSpec("s0", [
        LogicalTask("seed", read=(), write=(1,), param_slot="v"),
    ])])

    def program(job):
        yield job.define(simple_define({1: ("o1", 8)}))
        yield job.run(block, {"v": 3})

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e5)
    net = cluster.network
    name = cluster.workers[1].name
    net._link_free[(name, "worker-0")] = 1e9
    net._link_free[("worker-0", name)] = 1e9
    cluster.workers[1].fail()
    assert all(name not in key for key in net._link_free)


# ---------------------------------------------------------------------------
# Bug 3: unsized messages slipped past the bandwidth model
# ---------------------------------------------------------------------------
def test_network_rejects_unsized_messages():
    class NotAMessage:
        pass

    sim, net, src, dst = two_actor_net()
    with pytest.raises(AttributeError):
        net.transmit(src, dst, NotAMessage(), depart=0.0)


def test_job_restored_size_scales_with_replay_history():
    empty = P.JobRestored(1, [])
    one = P.JobRestored(1, [("b", {"x": 1.0})])
    two = P.JobRestored(1, [("b", {"x": 1.0, "y": 2.0}), ("c", {})])
    assert empty.size_bytes == 64
    assert one.size_bytes == 64 + 32 + 32
    assert two.size_bytes == 64 + (32 + 64) + 32
    # the size grows with the replay history instead of sitting on the
    # generic Message default regardless of payload
    assert empty.size_bytes < one.size_bytes < two.size_bytes


# ---------------------------------------------------------------------------
# Bug 4: zero-length span must not read as zero throughput
# ---------------------------------------------------------------------------
def _degenerate_metrics(span_end: float) -> Metrics:
    metrics = Metrics()
    for request_id in (1, 2, 3):
        metrics.begin("driver_block", 5.0, key=request_id,
                      block_id="blk", request_id=request_id)
        metrics.end("driver_block", span_end, key=request_id)
    return metrics


def test_task_throughput_is_nan_for_zero_length_span():
    throughput = task_throughput(_degenerate_metrics(5.0), "blk")
    assert math.isnan(throughput)


def test_task_throughput_stays_finite_for_real_spans():
    throughput = task_throughput(_degenerate_metrics(6.0), "blk")
    assert throughput == 0.0  # no "block" records -> zero tasks, real span
