"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_all_workloads():
    parser = build_parser()
    for workload in ("lr", "kmeans", "water", "regression"):
        args = parser.parse_args([workload, "--workers", "2"])
        assert args.workers == 2
        assert callable(args.fn)


def test_lr_runs_end_to_end(capsys):
    assert main(["lr", "--workers", "4", "--iterations", "6",
                 "--data-gb", "4"]) == 0
    out = capsys.readouterr().out
    assert "logistic regression" in out
    assert "steady-state iteration time" in out
    assert "auto_validations" in out


def test_lr_spark_system(capsys):
    assert main(["lr", "--workers", "4", "--iterations", "6",
                 "--data-gb", "4", "--system", "spark"]) == 0
    out = capsys.readouterr().out
    assert "system=spark" in out
    assert "template_instantiations" not in out  # Spark never instantiates


def test_lr_without_templates(capsys):
    assert main(["lr", "--workers", "4", "--iterations", "6",
                 "--data-gb", "4", "--no-templates"]) == 0
    out = capsys.readouterr().out
    assert "template_instantiations" not in out


def test_kmeans_real_compute(capsys):
    assert main(["kmeans", "--workers", "2", "--iterations", "5",
                 "--data-gb", "2", "--real"]) == 0
    assert "k-means" in capsys.readouterr().out


def test_water_prints_frames(capsys):
    assert main(["water", "--workers", "4", "--scale", "0.01",
                 "--frame-duration", "0.003"]) == 0
    out = capsys.readouterr().out
    assert "frame 0:" in out
    assert "variables" in out


def test_regression_reports_error(capsys):
    assert main(["regression", "--workers", "3"]) == 0
    assert "nested regression" in capsys.readouterr().out


def test_rotation_exercises_patch_cache(capsys):
    assert main(["rotation", "--workers", "4", "--iterations", "10"]) == 0
    out = capsys.readouterr().out
    assert "patch rotation" in out
    assert "patch_cache_hits" in out


def test_rotation_cache_cap_zero_forces_recompute(capsys):
    assert main(["rotation", "--workers", "4", "--iterations", "10",
                 "--patch-cache-cap", "0"]) == 0
    out = capsys.readouterr().out
    assert "patch cache cap 0" in out
    assert "patch_cache_hits" not in out  # every round recomputes


def test_rotation_requires_nimbus():
    with pytest.raises(SystemExit):
        main(["rotation", "--workers", "4", "--system", "spark"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_lr_decentralized_mode_runs(capsys):
    assert main(["lr", "--workers", "4", "--iterations", "8",
                 "--mode", "decentralized"]) == 0
    out = capsys.readouterr().out
    assert "logistic regression" in out
    assert "steady-state iteration time" in out


def test_decentralized_mode_requires_nimbus():
    with pytest.raises(SystemExit, match="nimbus"):
        main(["lr", "--workers", "4", "--system", "spark",
              "--mode", "decentralized"])


def test_serve_accepts_mode(capsys):
    assert main(["serve", "--workers", "4", "--jobs", "2",
                 "--iterations", "4", "--mode", "decentralized"]) == 0
    assert "job_arrival" in capsys.readouterr().out


def test_autoscale_subcommand_reports_reconciliation(capsys):
    assert main(["autoscale", "--workers", "8", "--iterations", "30",
                 "--step-iteration", "10"]) == 0
    out = capsys.readouterr().out
    assert "demand-step reconciliation" in out
    assert "time to stable" in out
    assert "zero loss" in out


def test_lr_accepts_autoscale_flag(capsys):
    assert main(["lr", "--workers", "4", "--iterations", "6",
                 "--autoscale"]) == 0
    assert "logistic regression" in capsys.readouterr().out


def test_autoscale_flag_requires_nimbus():
    with pytest.raises(SystemExit, match="nimbus"):
        main(["lr", "--workers", "4", "--system", "spark", "--autoscale"])


def test_profile_unknown_workload_is_a_described_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["profile", "--workload", "fig99_nope",
              "--workers", "2", "--iterations", "4"])
    message = str(excinfo.value)
    assert "fig99_nope" in message
    # the error names the valid choices instead of dumping a traceback
    assert "fig07_lr" in message and "fig08_kmeans" in message


@pytest.mark.parametrize("sort", ["cumulative", "tottime"])
def test_profile_sort_orders(sort, capsys):
    assert main(["profile", "--workload", "fig07_lr", "--workers", "2",
                 "--iterations", "4", "--sort", sort, "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "fig07_lr" in out
    # pstats prints the human name of the sort key it applied
    label = {"cumulative": "cumulative time", "tottime": "internal time"}
    assert f"Ordered by: {label[sort]}" in out


def test_profile_rejects_unknown_sort():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["profile", "--sort", "calls"])
