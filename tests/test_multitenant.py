"""Multi-tenant serving: cross-job isolation, admission, and fair share.

The load-bearing property (ROADMAP item 1's acceptance bar): a job
co-scheduled with strangers computes **bit-identical values** to the same
job running alone — across a 10-seed sweep, under chaos fault plans, with
the adaptive rebalancer enabled, and behind the controller's fair-share
dispatch cap. Timing observables (virtual end time, event counts) are
*expected* to differ under contention; the isolation contract is about
what each job computes, never when.

Alongside the property sweeps: admission-control lifecycle (descriptive
queue-overflow rejection; a cancelled job releases its namespace and
never stalls the others) and per-job observability (metrics streams
round-trip through JSON, never leak across jobs, and match a golden
snapshot).
"""

import json
import os

import numpy as np
import pytest

from repro.apps import LRApp, LRSpec
from repro.chaos import FaultPlan
from repro.nimbus import (
    OID_STRIDE,
    FairShareQueue,
    JobRejected,
    NimbusCluster,
)
from repro.obs import snapshot_metrics

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_SNAPSHOT = os.path.join(DATA_DIR, "golden_multijob_metrics.json")

SEEDS = range(10)
#: the second tenant runs fewer iterations so the pair is asymmetric
#: (different lifetimes, different result histories)
SHORT_ITERS = 3


def small_lr_app(seed=0, workers=3, iterations=5):
    """A real-compute fig07 job small enough for 10-seed co-run sweeps.

    ``real_compute=True`` is the point: isolation must hold for the
    actual numpy values each job computes, not just for virtual timings.
    """
    spec = LRSpec(num_workers=workers, iterations=iterations,
                  partitions_per_worker=2, rows_per_partition=16,
                  dim=20, data_bytes=1e6, real_compute=True, seed=seed)
    return LRApp(spec)


def serve_cluster(app, seed=0, chaos_profile=None, chaos_seed=0,
                  **cluster_kwargs):
    """A serve-mode cluster (no resident program; jobs arrive via the
    JobManager) sized to the app's spec."""
    plan = (None if chaos_profile is None
            else FaultPlan.from_profile(chaos_profile, seed=chaos_seed))
    return NimbusCluster(app.spec.num_workers, program=None,
                         registry=app.registry, seed=seed, chaos_plan=plan,
                         **cluster_kwargs)


def canon(value):
    """Hashable bit-exact form of a task result (arrays by raw bytes)."""
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, dict):
        return tuple(sorted((k, canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(canon(v) for v in value)
    return value


def job_observables(cluster, job_id, app):
    """Everything a job *computed*: block-return history plus the final
    value of every object it defined, keyed by job-local oid. Excludes
    all timing (co-scheduling legitimately changes when things happen)."""
    ctx = cluster.controller.jobs[job_id]
    values = {}
    for oid, _name, _part, _size, _home in app.variables.definitions:
        goid = ctx.goid(oid)
        holders = ctx.directory.holders_of_latest(goid)
        assert holders, f"job {job_id}: object {oid} has no latest holder"
        values[oid] = canon(cluster.workers[min(holders)].store.get(goid))
    history = tuple(
        (block_id, tuple(sorted((k, canon(v)) for k, v in results.items())))
        for block_id, results in ctx.results_history
    )
    return history, values


def run_solo(app, iterations=None, seed=0, chaos_profile=None,
             chaos_seed=0, **cluster_kwargs):
    """The reference: the same job admitted alone through the JobManager."""
    cluster = serve_cluster(app, seed=seed, chaos_profile=chaos_profile,
                            chaos_seed=chaos_seed, **cluster_kwargs)
    record = cluster.jobs.submit(
        app.program(blocking=False, iterations=iterations))
    cluster.run_until_jobs_finished(max_seconds=1e6)
    return job_observables(cluster, record.job_id, app)


def run_pair(app, seed=0, chaos_profile=None, chaos_seed=0,
             weights=(1.0, 1.0), **cluster_kwargs):
    """Two co-scheduled tenants of the same app (asymmetric lifetimes)."""
    cluster = serve_cluster(app, seed=seed, chaos_profile=chaos_profile,
                            chaos_seed=chaos_seed, **cluster_kwargs)
    a = cluster.jobs.submit(app.program(blocking=False), weight=weights[0])
    b = cluster.jobs.submit(app.program(blocking=False,
                                        iterations=SHORT_ITERS),
                            weight=weights[1])
    cluster.run_until_jobs_finished(max_seconds=1e6)
    return (job_observables(cluster, a.job_id, app),
            job_observables(cluster, b.job_id, app))


# ---------------------------------------------------------------------------
# The isolation property: co-scheduled values == solo values, bit for bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_cojob_values_bit_identical_to_solo(seed):
    app = small_lr_app(seed=seed)
    solo_a = run_solo(app, seed=seed)
    solo_b = run_solo(app, iterations=SHORT_ITERS, seed=seed)
    co_a, co_b = run_pair(app, seed=seed)
    assert co_a == solo_a, f"seed {seed}: co-scheduling changed job A"
    assert co_b == solo_b, f"seed {seed}: co-scheduling changed job B"


@pytest.mark.parametrize("seed", SEEDS)
def test_cojob_isolation_holds_under_chaos(seed):
    """Chaos co-runs compare against *fault-free* solo runs: the hardened
    protocol makes faults invisible to values, tenants or not."""
    app = small_lr_app(seed=seed)
    solo_a = run_solo(app, seed=seed)
    solo_b = run_solo(app, iterations=SHORT_ITERS, seed=seed)
    co_a, co_b = run_pair(app, seed=seed, chaos_profile="lossy",
                          chaos_seed=seed)
    assert co_a == solo_a, f"seed {seed}: chaos co-run changed job A"
    assert co_b == solo_b, f"seed {seed}: chaos co-run changed job B"


@pytest.mark.parametrize("seed", SEEDS)
def test_cojob_isolation_holds_with_rebalancer_on(seed):
    app = small_lr_app(seed=seed)
    solo_a = run_solo(app, seed=seed)
    solo_b = run_solo(app, iterations=SHORT_ITERS, seed=seed)
    co_a, co_b = run_pair(app, seed=seed, rebalance=True)
    assert co_a == solo_a, f"seed {seed}: rebalancer co-run changed job A"
    assert co_b == solo_b, f"seed {seed}: rebalancer co-run changed job B"


def test_cojob_isolation_holds_behind_dispatch_cap_and_weights():
    """Fair-share queueing (cap 1 forces every block through the stride
    scheduler, 3:1 weights skew the order) must reorder *time*, not
    values."""
    app = small_lr_app()
    solo_a = run_solo(app)
    solo_b = run_solo(app, iterations=SHORT_ITERS)
    co_a, co_b = run_pair(app, weights=(1.0, 3.0), dispatch_inflight_cap=1)
    assert co_a == solo_a
    assert co_b == solo_b


# ---------------------------------------------------------------------------
# Fair-share queue semantics
# ---------------------------------------------------------------------------
def test_fair_share_queue_serves_weighted_order():
    q = FairShareQueue()
    for i in range(3):
        q.push(1, 1.0, f"a{i}")
        q.push(2, 2.0, f"b{i}")
    order = [q.pop()[1] for _ in range(len(q))]
    # job 2 (double weight) gets two dequeues per job-1 dequeue; ties on
    # virtual time break toward the lower job id
    assert order == ["a0", "b0", "b1", "a1", "b2", "a2"]


def test_fair_share_queue_drop_job_discards_backlog():
    q = FairShareQueue()
    q.push(1, 1.0, "a0")
    q.push(2, 1.0, "b0")
    q.push(2, 1.0, "b1")
    assert q.drop_job(2) == 2
    assert len(q) == 1
    assert q.pop() == (1, "a0")
    assert not q
    with pytest.raises(IndexError):
        q.pop()


# ---------------------------------------------------------------------------
# Admission control and lifecycle
# ---------------------------------------------------------------------------
def test_admission_overflow_is_rejected_descriptively():
    app = small_lr_app()
    cluster = serve_cluster(app, max_concurrent_jobs=1, job_queue_cap=1)
    cluster.jobs.submit(app.program(blocking=False))
    cluster.jobs.submit(app.program(blocking=False))  # waits behind the cap
    with pytest.raises(JobRejected,
                       match=r"1 jobs running \(cap 1\) and the wait queue "
                             r"is full \(1/1\)"):
        cluster.jobs.submit(app.program(blocking=False))
    assert cluster.metrics.count("jobs_rejected") == 1
    assert len(cluster.jobs.rejections) == 1
    # the rejection harmed nobody: both accepted jobs run to completion
    cluster.run_until_jobs_finished(max_seconds=1e6)
    assert cluster.metrics.count("jobs_finished") == 2


def test_cancelled_job_releases_namespace_and_never_stalls_others():
    app = small_lr_app()
    solo_b = run_solo(app)
    cluster = serve_cluster(app)
    a = cluster.jobs.submit(app.program(blocking=False))
    b = cluster.jobs.submit(app.program(blocking=False))
    # tear job A down mid-run, well after its objects and templates exist
    cluster.sim.schedule_at(0.004, lambda: cluster.jobs.cancel(a.job_id))
    cluster.run_until_jobs_finished(max_seconds=1e6)
    assert cluster.jobs.records[a.job_id].state == "cancelled"
    assert cluster.jobs.records[b.job_id].state == "finished"
    # the survivor's values are untouched by its neighbor's demise
    assert job_observables(cluster, b.job_id, app) == solo_b
    # A's namespace is gone from the controller...
    assert a.job_id not in cluster.controller.jobs
    # ...and its objects are gone from every worker store
    lo, hi = a.job_id * OID_STRIDE, (a.job_id + 1) * OID_STRIDE
    leaked = {worker_id: [oid for oid in worker.store.live_objects()
                          if lo <= oid < hi]
              for worker_id, worker in cluster.workers.items()}
    assert not any(leaked.values()), f"cancelled job left objects: {leaked}"


def test_queued_job_admitted_after_a_cancellation():
    app = small_lr_app()
    cluster = serve_cluster(app, max_concurrent_jobs=1, job_queue_cap=2)
    a = cluster.jobs.submit(app.program(blocking=False))
    b = cluster.jobs.submit(app.program(blocking=False,
                                        iterations=SHORT_ITERS))
    assert cluster.jobs.records[b.job_id].state == "queued"
    cluster.jobs.cancel(a.job_id)
    assert cluster.jobs.records[b.job_id].state == "running"
    cluster.run_until_jobs_finished(max_seconds=1e6)
    assert cluster.jobs.records[b.job_id].state == "finished"


# ---------------------------------------------------------------------------
# Per-job observability: round-trip, no leakage, golden snapshot
# ---------------------------------------------------------------------------
def _virtual_pair_cluster():
    """A deterministic virtual-time co-run (spin-wait tasks, no numpy)
    used for the obs-stream assertions and the golden snapshot."""
    app = LRApp(LRSpec(num_workers=4, iterations=6,
                       partitions_per_worker=2))
    cluster = NimbusCluster(4, program=None, registry=app.registry)
    a = cluster.jobs.submit(app.program(blocking=False))
    b = cluster.jobs.submit(app.program(blocking=False, iterations=4),
                            weight=2.0)
    cluster.run_until_jobs_finished(max_seconds=1e6)
    return cluster, a, b


def test_per_job_metrics_round_trip_without_cross_job_leakage():
    cluster, a, b = _virtual_pair_cluster()
    snap_a = snapshot_metrics(a.metrics)
    snap_b = snapshot_metrics(b.metrics)
    assert json.loads(json.dumps(snap_a)) == snap_a
    assert json.loads(json.dumps(snap_b)) == snap_b
    # each job's control-plane decisions land in its own stream...
    assert snap_a["counters"]["tasks_scheduled"] > 0
    assert snap_b["counters"]["tasks_scheduled"] > 0
    assert snap_a["counters"]["template_instantiations"] > 0
    # ...sized to that job's own program (B ran fewer iterations)
    assert (snap_b["counters"]["tasks_scheduled"]
            < snap_a["counters"]["tasks_scheduled"])
    # and none of it leaks into the shared job-0 stream, which carries
    # only cluster-wide facts (worker execution, admission events)
    assert cluster.metrics.count("tasks_scheduled") == 0
    assert cluster.metrics.count("template_instantiations") == 0
    assert cluster.metrics.count("tasks_executed") > 0
    assert cluster.metrics.count("jobs_admitted") == 2


def test_traced_corun_tags_every_run_with_its_job_id():
    app = LRApp(LRSpec(num_workers=4, iterations=4,
                       partitions_per_worker=2))
    cluster = NimbusCluster(4, program=None, registry=app.registry,
                            trace=True)
    a = cluster.jobs.submit(app.program(blocking=False))
    b = cluster.jobs.submit(app.program(blocking=False))
    cluster.run_until_jobs_finished(max_seconds=1e6)
    job_ids = {run.job_id for run in cluster.tracer.runs.values()}
    assert job_ids == {a.job_id, b.job_id}


def test_per_job_snapshots_match_golden():
    """The golden file pins the exact per-job counter streams of the
    deterministic co-run — any cross-job bleed, double-count, or dropped
    decision changes it."""
    cluster, a, b = _virtual_pair_cluster()
    actual = {
        "job_1": snapshot_metrics(a.metrics)["counters"],
        "job_2": snapshot_metrics(b.metrics)["counters"],
        "cluster": {
            name: cluster.metrics.count(name)
            for name in ("jobs_registered", "jobs_admitted",
                         "jobs_finished", "tasks_executed",
                         "tasks_scheduled")
        },
    }
    with open(GOLDEN_SNAPSHOT) as fh:
        expected = json.load(fh)
    assert actual == expected
