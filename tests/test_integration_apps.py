"""Integration tests for the bundled applications (real numerics)."""

import numpy as np
import pytest

from repro.apps import (
    KMeansApp,
    KMeansSpec,
    LRApp,
    LRSpec,
    RegressionApp,
    RegressionSpec,
    WaterApp,
    WaterSpec,
)
from repro.apps.water import ADVECT_STAGES, CG_STAGES, POST_STAGES
from repro.nimbus import NimbusCluster


def lr_spec(**kwargs):
    defaults = dict(num_workers=3, data_bytes=3e9, partitions_per_worker=2,
                    dim=12, iterations=10, real_compute=True,
                    rows_per_partition=120)
    defaults.update(kwargs)
    return LRSpec(**defaults)


class TestLogisticRegression:
    def run(self, use_templates=True, blocking=True, **kwargs):
        spec = lr_spec(**kwargs)
        app = LRApp(spec)
        cluster = NimbusCluster(spec.num_workers,
                                app.program(blocking=blocking),
                                registry=app.registry,
                                use_templates=use_templates)
        cluster.run_until_finished(max_seconds=1e5)
        return app, cluster

    def test_gradient_norm_decreases(self):
        app, cluster = self.run()
        norms = [iv.labels["results"]["grad_norm"]
                 for iv in cluster.metrics.intervals["block"]
                 if iv.labels["block_id"] == "lr.iteration"]
        assert norms[0] > norms[-1]
        assert norms[-1] < 1.0

    def test_templates_do_not_change_results(self):
        _app_a, with_templates = self.run(use_templates=True)
        app_b, without = self.run(use_templates=False)
        coeff_with = with_templates.workers[0].store.get(app_b.coeff)
        coeff_without = without.workers[0].store.get(app_b.coeff)
        assert np.allclose(coeff_with, coeff_without)

    def test_steady_state_auto_validates(self):
        _app, cluster = self.run(iterations=12)
        # iterations 5.. should ride the auto-validation fast path
        assert cluster.metrics.count("auto_validations") >= 7

    def test_first_templated_iteration_patches_coeff(self):
        """The §2.4 example: the model parameter lives only at its writer
        until the first templated instantiation patches it out."""
        _app, cluster = self.run(iterations=8)
        assert cluster.metrics.count("patches_computed") == 1
        assert cluster.metrics.count("patch_copies") >= 1

    def test_convergence_program_stops_on_tolerance(self):
        spec = lr_spec(iterations=50)
        app = LRApp(spec)
        cluster = NimbusCluster(spec.num_workers,
                                app.convergence_program(tolerance=0.5),
                                registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        norms = [iv.labels["results"]["grad_norm"]
                 for iv in cluster.metrics.intervals["block"]
                 if iv.labels["block_id"] == "lr.iteration"]
        assert norms[-1] < 0.5
        assert len(norms) < 50  # stopped early, not at the cap

    def test_spec_arithmetic(self):
        spec = LRSpec(num_workers=100)
        assert spec.num_partitions == 8000
        assert spec.partition_bytes == pytest.approx(12.5e6)
        assert spec.gradient_task_s == pytest.approx(12.5e6 / spec.compute_rate)


class TestKMeans:
    def run(self, **kwargs):
        defaults = dict(num_workers=2, data_bytes=2e9, partitions_per_worker=2,
                        dim=2, num_clusters=3, iterations=12,
                        real_compute=True, rows_per_partition=150)
        defaults.update(kwargs)
        spec = KMeansSpec(**defaults)
        app = KMeansApp(spec)
        cluster = NimbusCluster(spec.num_workers, app.program(blocking=True),
                                registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        return app, cluster

    def test_inertia_monotonically_improves(self):
        _app, cluster = self.run()
        inertia = [iv.labels["results"]["inertia"]
                   for iv in cluster.metrics.intervals["block"]
                   if iv.labels["block_id"] == "km.iteration"]
        assert inertia[0] >= inertia[-1]
        # k-means inertia is non-increasing from iteration 2 onward
        for before, after in zip(inertia[1:], inertia[2:]):
            assert after <= before + 1e-9

    def test_recovers_cluster_centers(self):
        from repro.apps.datasets import make_cluster_data
        app, cluster = self.run()
        spec = app.spec
        _parts, centers = make_cluster_data(
            spec.num_partitions, spec.rows_per_partition, spec.dim,
            spec.num_clusters, spec.seed)
        learned = cluster.workers[0].store.get(app.centroids)["centroids"]
        # every true center has a learned centroid nearby
        for center in centers:
            distances = np.linalg.norm(learned - center, axis=1)
            assert distances.min() < 0.2


class TestRegression:
    def test_nested_loops_converge(self):
        spec = RegressionSpec(num_workers=3, threshold_e=0.03,
                              threshold_g=0.2)
        app = RegressionApp(spec)
        cluster = NimbusCluster(3, app.program(), registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        errors = [iv.labels["results"]["error"]
                  for iv in cluster.metrics.intervals["block"]
                  if iv.labels["block_id"] == "reg.estimate"]
        assert errors[-1] <= 0.03

    def test_patch_cache_hits_on_loop_boundary(self):
        """Re-entering the inner loop repeats the same patch: the cache
        must hit from the second outer iteration (§4.2 'very high hit
        rate')."""
        spec = RegressionSpec(num_workers=3, threshold_e=0.0,  # never met
                              threshold_g=0.2, max_outer=6)
        app = RegressionApp(spec)
        cluster = NimbusCluster(3, app.program(), registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        metrics = cluster.metrics
        assert metrics.count("patch_cache_hits") >= 3
        assert metrics.count("patches_computed") <= 4


class TestWater:
    def small_spec(self, **kwargs):
        defaults = dict(num_workers=4, partitions_per_worker=2, scale=0.002,
                        frame_duration=0.006, reseed_every=3)
        defaults.update(kwargs)
        return WaterSpec(**defaults)

    def test_has_21_stages_and_40_variables(self):
        spec = self.small_spec()
        app = WaterApp(spec)
        assert len(ADVECT_STAGES) + len(CG_STAGES) + len(POST_STAGES) == 21
        assert app.num_variables >= 40

    def test_triply_nested_loop_runs_expected_substeps(self):
        spec = self.small_spec()
        app = WaterApp(spec)
        cluster = NimbusCluster(spec.num_workers, app.program(),
                                registry=app.registry)
        cluster.run_until_finished(max_seconds=1e6)
        post_runs = [iv for iv in cluster.metrics.intervals["block"]
                     if iv.labels["block_id"] == "water.post"]
        assert len(post_runs) == spec.expected_substeps()

    def test_cg_iterations_match_residual_model(self):
        spec = self.small_spec()
        app = WaterApp(spec)
        cluster = NimbusCluster(spec.num_workers, app.program(),
                                registry=app.registry)
        cluster.run_until_finished(max_seconds=1e6)
        cg_runs = [iv for iv in cluster.metrics.intervals["block"]
                   if iv.labels["block_id"] == "water.cg"]
        expected = sum(spec.expected_cg_iterations(s)
                       for s in range(spec.expected_substeps()))
        assert len(cg_runs) == expected

    def test_inner_loop_auto_validates(self):
        """The CG inner loop is the §4.2 fast path: consecutive cg→cg
        instantiations must auto-validate."""
        spec = self.small_spec()
        app = WaterApp(spec)
        cluster = NimbusCluster(spec.num_workers, app.program(),
                                registry=app.registry)
        cluster.run_until_finished(max_seconds=1e6)
        metrics = cluster.metrics
        assert metrics.count("auto_validations") > metrics.count(
            "full_validations")

    def test_reseed_branch_taken_data_dependently(self):
        spec = self.small_spec(reseed_every=2)
        app = WaterApp(spec)
        cluster = NimbusCluster(spec.num_workers, app.program(),
                                registry=app.registry)
        cluster.run_until_finished(max_seconds=1e6)
        reseeds = [iv for iv in cluster.metrics.intervals["block"]
                   if iv.labels["block_id"] == "water.reseed"]
        assert len(reseeds) == spec.expected_substeps() // 2

    def test_ghost_reads_generate_neighbor_copies(self):
        spec = self.small_spec()
        app = WaterApp(spec)
        cluster = NimbusCluster(spec.num_workers, app.program(),
                                registry=app.registry)
        cluster.run_until_finished(max_seconds=1e6)
        # worker templates must contain cross-worker copies for the ghost
        # exchanges at partition boundaries
        wts = cluster.controller.worker_templates[("water.advect", 0)]
        from repro.nimbus.commands import CommandKind
        sends = sum(1 for entries in wts.entries.values()
                    for e in entries
                    if e is not None and e.kind == CommandKind.SEND)
        assert sends >= 2 * (spec.num_workers - 1)
