"""Unit tests for patches and the patch cache (§2.4, §4.2)."""

import pytest

from repro.core.patching import Patch, PatchCache, build_patch
from repro.nimbus.commands import CommandKind
from repro.nimbus.data import LogicalObject, ObjectDirectory

SIZES = {10: 128, 11: 64}


def make_directory():
    directory = ObjectDirectory()
    directory.register(LogicalObject(10, "param", 0, 128), home=0)
    directory.register(LogicalObject(11, "aux", 0, 64), home=2)
    return directory


def test_build_patch_produces_matched_copy_pairs():
    directory = make_directory()
    patch = build_patch([(1, 10), (3, 10)], directory, SIZES)
    assert patch.num_copies() == 2
    assert patch.violation_set == {(1, 10), (3, 10)}
    # sender side: worker 0 holds the latest version
    sends = patch.entries[0]
    assert all(e.kind == CommandKind.SEND for e in sends)
    assert sorted(e.dst_worker for e in sends) == [1, 3]
    for send in sends:
        recv = patch.entries[send.dst_worker][send.dst_index]
        assert recv.kind == CommandKind.RECV
        assert recv.src_worker == 0
        assert recv.write == (10,)
        assert recv.size_bytes == 128


def test_build_patch_picks_deterministic_source():
    directory = make_directory()
    directory.record_copy(10, 5)
    patch_a = build_patch([(1, 10)], directory, SIZES)
    patch_b = build_patch([(1, 10)], directory, SIZES)
    assert patch_a.copies == patch_b.copies
    assert patch_a.copies[0][1] == 0  # lowest holder id wins


def test_build_patch_without_holder_raises():
    directory = make_directory()
    directory.evict_worker(0)
    with pytest.raises(RuntimeError):
        build_patch([(1, 10)], directory, SIZES)


def test_patch_apply_to_directory():
    directory = make_directory()
    patch = build_patch([(1, 10)], directory, SIZES)
    patch.apply_to_directory(directory)
    assert directory.is_fresh(10, 1)


def test_sources_still_valid_tracks_writes():
    directory = make_directory()
    patch = build_patch([(1, 10)], directory, SIZES)
    assert patch.sources_still_valid(directory)
    directory.record_write(10, 4)  # worker 0's copy is now stale
    assert not patch.sources_still_valid(directory)


def test_patch_ids_allocated_by_cache():
    directory = make_directory()
    cache = PatchCache()
    a = build_patch([(1, 10)], directory, SIZES, patch_id=cache.allocate_id())
    b = build_patch([(1, 10)], directory, SIZES, patch_id=cache.allocate_id())
    assert a.patch_id != b.patch_id
    # the sequence belongs to the cache, not the process: a second cache
    # (another controller) may reuse ids without colliding
    other = PatchCache()
    assert other.allocate_id() == 1


def test_patch_id_sequence_survives_invalidate_all():
    cache = PatchCache()
    before = cache.allocate_id()
    cache.invalidate_all()
    # workers cache installed patches by id across controller-side
    # invalidation, so ids must never be reissued
    assert cache.allocate_id() > before


class TestPatchCache:
    def test_miss_then_hit(self):
        directory = make_directory()
        cache = PatchCache()
        violations = [(1, 10)]
        assert cache.lookup("prev", ("b", 0), violations, directory) is None
        patch = build_patch(violations, directory, SIZES)
        cache.store("prev", ("b", 0), patch)
        assert cache.lookup("prev", ("b", 0), violations, directory) is patch
        assert cache.hits == 1 and cache.misses == 1

    def test_different_prev_key_misses(self):
        directory = make_directory()
        cache = PatchCache()
        violations = [(1, 10)]
        patch = build_patch(violations, directory, SIZES)
        cache.store("prev-a", ("b", 0), patch)
        assert cache.lookup("prev-b", ("b", 0), violations, directory) is None

    def test_changed_violations_miss(self):
        directory = make_directory()
        cache = PatchCache()
        patch = build_patch([(1, 10)], directory, SIZES)
        cache.store("prev", ("b", 0), patch)
        assert cache.lookup("prev", ("b", 0), [(2, 10)], directory) is None

    def test_stale_source_misses(self):
        directory = make_directory()
        cache = PatchCache()
        violations = [(1, 10)]
        patch = build_patch(violations, directory, SIZES)
        cache.store("prev", ("b", 0), patch)
        directory.record_write(10, 4)
        # worker 1 still violates, but the cached source is stale
        assert cache.lookup("prev", ("b", 0), violations, directory) is None

    def test_lru_eviction_at_capacity(self):
        directory = make_directory()
        cache = PatchCache(capacity=2)
        violations = [(1, 10)]
        for prev in ("a", "b", "c"):
            cache.store(prev, ("b", 0), build_patch(violations, directory, SIZES))
        assert len(cache) == 2
        assert cache.evictions == 1
        # "a" was least recently used and is gone; "b" and "c" survive
        assert cache.lookup("a", ("b", 0), violations, directory) is None
        assert cache.lookup("b", ("b", 0), violations, directory) is not None
        assert cache.lookup("c", ("b", 0), violations, directory) is not None

    def test_lru_hit_refreshes_recency(self):
        directory = make_directory()
        cache = PatchCache(capacity=2)
        violations = [(1, 10)]
        cache.store("a", ("b", 0), build_patch(violations, directory, SIZES))
        cache.store("b", ("b", 0), build_patch(violations, directory, SIZES))
        cache.lookup("a", ("b", 0), violations, directory)  # refresh "a"
        cache.store("c", ("b", 0), build_patch(violations, directory, SIZES))
        assert cache.lookup("a", ("b", 0), violations, directory) is not None
        assert cache.lookup("b", ("b", 0), violations, directory) is None

    def test_eviction_reported_to_metrics(self):
        from repro.sim.metrics import Metrics

        metrics = Metrics()
        directory = make_directory()
        cache = PatchCache(capacity=1, metrics=metrics)
        cache.store("a", ("b", 0), build_patch([(1, 10)], directory, SIZES))
        cache.store("b", ("b", 0), build_patch([(1, 10)], directory, SIZES))
        assert metrics.count("patch_cache.evictions") == 1

    def test_invalidate_all(self):
        directory = make_directory()
        cache = PatchCache()
        patch = build_patch([(1, 10)], directory, SIZES)
        cache.store("prev", ("b", 0), patch)
        cache.invalidate_all()
        assert len(cache) == 0
        assert cache.lookup("prev", ("b", 0), [(1, 10)], directory) is None
