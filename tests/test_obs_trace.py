"""Tests for the observability layer: tracer, exporter, critical path,
and the metrics-registry snapshot.

The two load-bearing guarantees:

* **bit-identity** — tracing is pure observation. A traced run's virtual
  results (iteration times, decision counters, chaos fault schedules) are
  bit-identical to an untraced run across seeds.
* **exporter stability** — the Chrome ``trace_event`` JSON follows the
  format's schema (checked against a golden file and structurally on a
  real run) so Perfetto keeps loading it.
"""

import json
import math
import os

import pytest

from repro.analysis import critical_path, render_critical_path
from repro.obs import (
    Tracer,
    snapshot_metrics,
    to_chrome_trace,
    trace_enabled_default,
)
from repro.obs import trace as trace_mod
from repro.sim.metrics import Metrics

from . import helpers

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_TRACE = os.path.join(DATA_DIR, "golden_trace.json")

LR_BLOCK = "lr.iteration"


def run_lr(trace, seed=0, chaos_seed=None, workers=3, iterations=6,
           mode="centralized"):
    """This suite's convention: chaos means the "lossy" profile, and the
    first (trace on/off) argument is what each test varies."""
    return helpers.run_lr(
        workers=workers, iterations=iterations, seed=seed,
        chaos_profile=None if chaos_seed is None else "lossy",
        chaos_seed=0 if chaos_seed is None else chaos_seed, trace=trace,
        mode=mode)


def virtual_results(cluster):
    return helpers.virtual_results(cluster, LR_BLOCK, skip=2)


# ---------------------------------------------------------------------------
# Off by default, zero footprint when off
# ---------------------------------------------------------------------------
def test_tracing_is_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.setattr(trace_mod, "TRACE_ENABLED", False)
    assert not trace_enabled_default()
    cluster = run_lr(trace=None, iterations=4)
    assert cluster.tracer is None
    assert cluster.controller._trace is None
    assert all(w._trace is None for w in cluster.workers.values())


def test_env_variable_enables_tracing(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert trace_enabled_default()
    monkeypatch.setenv("REPRO_TRACE", "0")
    monkeypatch.setattr(trace_mod, "TRACE_ENABLED", False)
    assert not trace_enabled_default()


# ---------------------------------------------------------------------------
# Bit-identity: traced == untraced, across seeds, with and without chaos
# ---------------------------------------------------------------------------
def test_traced_runs_are_bit_identical_across_seeds():
    for seed in range(10):
        untraced = run_lr(trace=False, seed=seed)
        traced = run_lr(trace=True, seed=seed)
        assert virtual_results(traced) == virtual_results(untraced), \
            f"seed {seed}: tracing changed the simulation"
        # and the tracer actually recorded the run
        assert traced.tracer.cmds and traced.tracer.runs
        assert traced.tracer.finish_time == traced.sim.now


def test_traced_chaos_runs_keep_the_fault_schedule():
    for chaos_seed in (0, 1, 2):
        untraced = run_lr(trace=False, chaos_seed=chaos_seed)
        traced = run_lr(trace=True, chaos_seed=chaos_seed)
        assert traced.network.fault_log == untraced.network.fault_log, \
            f"chaos seed {chaos_seed}: tracing perturbed the fault schedule"
        assert virtual_results(traced) == virtual_results(untraced)
        assert traced.metrics.counters_snapshot("chaos.") == \
            untraced.metrics.counters_snapshot("chaos.")
        assert traced.metrics.counters_snapshot("protocol.") == \
            untraced.metrics.counters_snapshot("protocol.")


# ---------------------------------------------------------------------------
# Exporter: golden file + structural schema on a real run
# ---------------------------------------------------------------------------
class FakeSim:
    """Minimal engine stand-in: settable clock + order sequence."""

    def __init__(self):
        self.now = 0.0
        self._seq = 0

    def at(self, now, seq):
        self.now = now
        self._seq = seq

    def order_key(self):
        return (self.now, self._seq)


def build_golden_tracer() -> Tracer:
    """A tiny hand-scripted run covering every event family the exporter
    handles: spans, instants, flows (ctrl + copy), command async pairs,
    copies, runs, and requests. Timestamps are exact binary floats so the
    golden JSON is platform-stable."""
    sim = FakeSim()
    tracer = Tracer(sim)
    sim.at(0.0, 1)
    tracer.block_submit(1, "blk", None)
    tracer.flow_send("driver", "controller", 1, "SubmitBlock")
    sim.at(0.001953125, 2)
    tracer.flow_recv("driver", "controller", 1)
    tracer.run_begin(1, "blk", "central", 1, 2, 0.001953125)
    tracer.flow_send("controller", "worker-0", 1, "DispatchCommandBatch")
    tracer.run_decided(1, 0.00390625)
    tracer.handler_span("controller", "SubmitBlock", 0.001953125, 0.001953125)
    sim.at(0.0078125, 3)
    tracer.flow_recv("controller", "worker-0", 1)
    tracer.cmd_enqueue(10, 0, "lr.gradient", "worker-0", 1)   # TASK
    tracer.cmd_ready(10, None)
    tracer.cmd_enqueue(11, 1, None, "worker-0", 1)            # SEND
    sim.at(0.015625, 4)
    tracer.cmd_start(10)
    sim.at(0.03125, 5)
    tracer.cmd_complete(10)
    tracer.cmd_ready(11, ("cmd", 10))
    tracer.cmd_start(11)
    tracer.copy_send((1, 1, 0), 11, "worker-0", 4096)
    tracer.flow_send("worker-0", "worker-1", 1, "DataMessage")
    tracer.cmd_complete(11)
    sim.at(0.046875, 6)
    tracer.flow_recv("worker-0", "worker-1", 1)
    tracer.copy_arrive((1, 1, 0), "worker-1")
    tracer.instant("worker-1", "template", "template.install",
                   block_id="blk", version=0, entries=2)
    sim.at(0.0625, 7)
    tracer.run_finish(1)
    tracer.block_complete(1)
    sim.at(0.078125, 8)
    tracer.driver_finish()
    return tracer


def test_exporter_matches_golden_file():
    actual = json.loads(json.dumps(to_chrome_trace(build_golden_tracer())))
    with open(GOLDEN_TRACE) as fh:
        expected = json.load(fh)
    assert actual == expected


def test_exporter_schema_on_a_real_run():
    cluster = run_lr(trace=True)
    doc = to_chrome_trace(cluster.tracer)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["commands"] == len(cluster.tracer.cmds)
    assert doc["otherData"]["inter_worker_copies"] > 0

    known_phases = {"M", "X", "i", "b", "e", "s", "f"}
    pids = set()
    for ev in events:
        assert ev["ph"] in known_phases
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        assert "name" in ev
        if ev["ph"] == "M":
            pids.add(ev["pid"])
            continue
        assert ev["ts"] >= 0.0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
        if ev["ph"] in ("b", "e", "s", "f"):
            assert "id" in ev
        assert ev["pid"] in pids  # every event's process has metadata

    # async begin/end pairs balance per command id
    begins = [ev["id"] for ev in events if ev["ph"] == "b"]
    ends = [ev["id"] for ev in events if ev["ph"] == "e"]
    assert sorted(begins) == sorted(ends) and begins

    # flow starts/finishes balance, and inter-worker copies produce "copy"
    # flows (one per DataMessage) linking sender to receiver
    flow_starts = {ev["id"] for ev in events if ev["ph"] == "s"}
    flow_ends = {ev["id"] for ev in events if ev["ph"] == "f"}
    assert flow_ends <= flow_starts
    copy_flows = [ev for ev in events
                  if ev["ph"] == "s" and ev["cat"] == "copy"]
    assert len(copy_flows) >= doc["otherData"]["inter_worker_copies"]

    # timestamps are sorted (ties broken by engine order at export time)
    ts = [ev["ts"] for ev in events if ev["ph"] != "M"]
    assert ts == sorted(ts)


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------
def test_critical_path_attributes_the_wall_clock():
    cluster = run_lr(trace=True)
    report = critical_path(cluster.tracer)
    assert report.total == cluster.sim.now
    assert not report.truncated
    assert report.coverage >= 0.95
    assert all(v >= 0.0 for v in report.segments.values())
    assert report.segments["compute"] > 0.0
    assert math.isclose(report.attributed
                        + (report.total - report.attributed), report.total)
    rendered = render_critical_path(report)
    assert "critical path" in rendered and "attributed" in rendered


def test_critical_path_covers_decentralized_runs():
    """A self-scheduling run's steady-state instances are dispatched by
    the worker itself, so most commands on the path have no per-instance
    controller decision; the frontier walk must still attribute ≥95% of
    the wall clock."""
    cluster = run_lr(iterations=16, trace=True, mode="decentralized")
    report = critical_path(cluster.tracer)
    assert report.total == cluster.sim.now
    assert not report.truncated
    assert report.coverage >= 0.95
    assert report.segments["compute"] > 0.0


def test_critical_path_tolerates_missing_decision_spans():
    """Regression: the walk assumed every run had a controller decision
    span (``decide_start``/``decide_end``).  Strip them — the shape a
    controller-bypassed hop produces — and the walk must neither crash
    nor leave the wall clock unattributed."""
    cluster = run_lr(iterations=12, trace=True, mode="decentralized")
    tracer = cluster.tracer
    stripped = 0
    for run in tracer.runs.values():
        if run.mode == "self":
            run.decide_start = None
            run.decide_end = None
            stripped += 1
    assert stripped > 0  # the steady state really is self-scheduled
    report = critical_path(tracer)
    assert not report.truncated
    assert report.coverage >= 0.95

    # even with the run records gone entirely the walk stays total
    for run in [r for r in tracer.runs.values() if r.mode == "self"]:
        del tracer.runs[run.seq]
    report = critical_path(tracer)
    assert not report.truncated
    assert report.coverage >= 0.95


def test_critical_path_of_empty_trace_is_benign():
    report = critical_path(Tracer(FakeSim()))
    assert report.total == 0.0
    assert report.coverage == 1.0
    assert report.chain == []


# ---------------------------------------------------------------------------
# Metrics-registry snapshot
# ---------------------------------------------------------------------------
def test_snapshot_metrics_summarizes_everything():
    metrics = Metrics()
    metrics.incr("tasks", 3)
    metrics.sample("queue_depth", 1.0, 4.0)
    metrics.sample("queue_depth", 2.0, 6.0)
    metrics.begin("iteration", 0.0, key=1)
    metrics.end("iteration", 2.0, key=1)
    metrics.begin("iteration", 3.0, key=2)  # left open on purpose
    snap = snapshot_metrics(metrics)
    assert snap["snapshot_version"] == 1
    assert snap["counters"] == {"tasks": 3.0}
    assert snap["series"]["queue_depth"] == {
        "count": 2, "min": 4.0, "max": 6.0, "mean": 5.0,
        "first_t": 1.0, "last_t": 2.0,
    }
    assert snap["intervals"]["iteration"]["count"] == 1
    assert snap["intervals"]["iteration"]["mean"] == 2.0
    assert snap["intervals"]["iteration"]["open"] == 1


def test_snapshot_of_a_real_run_round_trips_through_json():
    cluster = run_lr(trace=False, iterations=4)
    snap = snapshot_metrics(cluster.metrics)
    assert snap["counters"] == cluster.metrics.counters_snapshot()
    assert snap["intervals"]["driver_block"]["open"] == 0
    assert json.loads(json.dumps(snap)) == snap
