"""Unit tests for the worker: local readiness, copies, slots, halt."""

import pytest

from repro.nimbus import protocol as P
from repro.nimbus.commands import Command, CommandKind, make_copy_pair, make_task
from repro.nimbus.costs import CostModel
from repro.nimbus.data import ObjectStore
from repro.nimbus.runtime import FunctionRegistry
from repro.nimbus.worker import DurableStorage, Worker
from repro.sim.actor import Actor, Message
from repro.sim.engine import Simulator
from repro.sim.metrics import Metrics
from repro.sim.network import Network


class FakeController(Actor):
    def __init__(self, sim):
        super().__init__(sim, "controller")
        self.completions = []
        self.instances = []

    def handle(self, msg):
        if isinstance(msg, P.CommandComplete):
            self.completions.append(msg)
        elif isinstance(msg, P.CommandCompleteBatch):
            for cid, seq, duration, value, oid in msg.items:
                self.completions.append(P.CommandComplete(
                    msg.worker_id, cid, seq, duration, value, oid))
        elif isinstance(msg, P.InstanceComplete):
            self.instances.append(msg)


def build(num_workers=2, registry=None):
    sim = Simulator()
    net = Network(sim, latency=1e-5, bandwidth=1e9)
    metrics = Metrics()
    controller = net.attach(FakeController(sim))
    registry = registry or FunctionRegistry()
    workers = {}
    storage = DurableStorage()
    for wid in range(num_workers):
        worker = Worker(sim, wid, controller, registry, CostModel(), metrics,
                        storage, slots=2)
        net.attach(worker)
        workers[wid] = worker
    for worker in workers.values():
        worker.peers = workers
    return sim, controller, workers


def dispatch(worker, cmd, seq=1, report=False):
    worker.deliver(P.DispatchCommand(cmd, seq, report))


def stamp_registry():
    registry = FunctionRegistry()

    def stamp(ctx):
        ctx.write(ctx.write_set[0], ("stamp", ctx.params))

    registry.register("stamp", fn=stamp, duration=0.01)
    registry.register("slow", fn=stamp, duration=0.1)
    return registry


def test_task_executes_and_acks():
    sim, controller, workers = build(registry=stamp_registry())
    worker = workers[0]
    worker.store.create(1)
    dispatch(worker, make_task(1, 0, "stamp", read=(), write=(1,), params=7))
    sim.run()
    assert worker.store.get(1) == ("stamp", 7)
    assert len(controller.completions) == 1
    ack = controller.completions[0]
    assert ack.cid == 1 and ack.duration == pytest.approx(0.01)


def test_before_set_ordering():
    registry = FunctionRegistry()
    log = []
    registry.register("log", fn=lambda ctx: log.append(ctx.params),
                      duration=0.01)
    sim, _controller, workers = build(registry=registry)
    worker = workers[0]
    first = make_task(1, 0, "log", read=(), write=(), params="first")
    second = Command(2, CommandKind.TASK, 0, params="second",
                     before=[1], function="log")
    # deliver in reverse dependency order is impossible over FIFO, but the
    # dependent can sit queued while its predecessor runs
    dispatch(worker, first)
    dispatch(worker, second)
    sim.run()
    assert log == ["first", "second"]


def test_object_conflict_ordering_without_before_sets():
    """Cross-command conflicts are resolved locally even with empty before
    sets (requirement 1 of §3.1 plus the conflict tracker)."""
    registry = FunctionRegistry()
    log = []

    def reader(ctx):
        log.append(("read", ctx.read(1)))

    def writer(ctx):
        ctx.write(1, "v2")
        log.append(("write",))

    registry.register("reader", fn=reader, duration=0.05)
    registry.register("writer", fn=writer, duration=0.001)
    sim, _c, workers = build(registry=registry)
    worker = workers[0]
    worker.store.put(1, "v1")
    dispatch(worker, make_task(1, 0, "reader", read=(1,), write=()))
    # writer is much faster but must wait for the reader (anti-dependency)
    dispatch(worker, make_task(2, 0, "writer", read=(), write=(1,)))
    dispatch(worker, make_task(3, 0, "reader", read=(1,), write=()))
    sim.run()
    assert log == [("read", "v1"), ("write",), ("read", "v2")]


def test_copy_pair_moves_payload():
    sim, _c, workers = build(registry=stamp_registry())
    src, dst = workers[0], workers[1]
    src.store.put(5, "payload")
    send, recv = make_copy_pair(10, 11, 5, src=0, dst=1, size_bytes=100)
    dispatch(src, send)
    dispatch(dst, recv)
    sim.run()
    assert dst.store.get(5) == "payload"


def test_early_data_buffered_until_recv_arrives():
    sim, _c, workers = build()
    dst = workers[1]
    # data arrives before the recv command is enqueued
    dst.deliver(P.DataMessage(("cid", 11), 5, "early", 10))
    sim.run()
    recv = Command(11, CommandKind.RECV, 1, write=(5,), src_worker=0,
                   tag=("cid", 11))
    dispatch(dst, recv)
    sim.run()
    assert dst.store.get(5) == "early"
    assert dst.queued_commands == 0


def test_slots_limit_concurrency():
    registry = stamp_registry()
    sim, controller, workers = build(registry=registry)
    worker = workers[0]  # 2 slots
    for i in range(4):
        worker.store.create(100 + i)
        dispatch(worker, make_task(
            20 + i, 0, "slow", read=(), write=(100 + i,), params=i))
    sim.run()
    ends = sorted(round(c.duration, 6) for c in controller.completions)
    assert len(controller.completions) == 4
    # 4 tasks x 0.1s on 2 slots: finish in two waves, so the simulation
    # takes ~0.2s, not ~0.1s or ~0.4s
    assert 0.19 < sim.now < 0.25


def test_instance_completion_aggregates(monkeypatch):
    """Template instantiation acks once per instance, not per command."""
    from repro.core.worker_template import TemplateEntry

    sim, controller, workers = build(registry=stamp_registry())
    worker = workers[0]
    entries = [
        TemplateEntry(index=0, kind=CommandKind.TASK, write=(1,),
                      function="stamp", param_slot="p"),
        TemplateEntry(index=1, kind=CommandKind.TASK, write=(2,),
                      before=(0,), function="stamp", param_slot="p"),
    ]
    worker.store.create(1)
    worker.store.create(2)
    worker.deliver(P.InstallWorkerTemplate("blk", 0, entries, reports=[1]))
    worker.deliver(P.InstantiateWorkerTemplate(
        "blk", 0, instance_id=9, cid_base=100, params={"p": 3}, block_seq=4))
    sim.run()
    assert len(controller.instances) == 1
    inst = controller.instances[0]
    assert inst.instance_id == 9 and inst.block_seq == 4
    assert inst.values == {2: ("stamp", 3)}
    assert inst.compute_time == pytest.approx(0.02)
    assert controller.completions == []


def test_halt_flushes_everything():
    sim, controller, workers = build(registry=stamp_registry())
    worker = workers[0]
    worker.store.create(1)
    dispatch(worker, make_task(1, 0, "slow", read=(), write=(1,), params=1))
    dispatch(worker, make_task(2, 0, "slow", read=(), write=(1,), params=2))
    sim.run(until=0.01)  # first task started, nothing finished
    worker.deliver(P.Halt())
    sim.run()
    halt_acks = [m for m in controller.completions]
    assert worker.queued_commands == 0
    # no task completions leaked after the halt
    assert halt_acks == []
    assert worker.tasks_executed == 0


def test_failed_worker_goes_silent():
    sim, controller, workers = build(registry=stamp_registry())
    worker = workers[0]
    worker.store.create(1)
    worker.fail()
    dispatch(worker, make_task(1, 0, "stamp", read=(), write=(1,)))
    sim.run()
    assert controller.completions == []


def test_checkpoint_save_and_load_roundtrip():
    sim, controller, workers = build()
    worker = workers[0]
    worker.store.put(1, {"value": 42})
    worker.deliver(P.SaveCheckpoint(1))
    sim.run()
    worker.store.put(1, {"value": 99})  # diverge after the checkpoint
    worker.deliver(P.LoadCheckpoint(1, [1]))
    sim.run()
    assert worker.store.get(1) == {"value": 42}


def test_checkpoint_is_deep_copy():
    sim, _c, workers = build()
    worker = workers[0]
    payload = {"value": [1, 2]}
    worker.store.put(1, payload)
    worker.deliver(P.SaveCheckpoint(1))
    sim.run()
    payload["value"].append(3)  # in-place mutation after the save
    worker.deliver(P.LoadCheckpoint(1, [1]))
    sim.run()
    assert worker.store.get(1) == {"value": [1, 2]}
