"""Unit tests for controller templates (Figure 5a)."""

import pytest

from repro.core.controller_template import (
    ControllerTemplate,
    ControllerTemplateBuilder,
)
from repro.core.spec import BlockSpec, LogicalTask, StageSpec


def simple_block():
    """Two producers feeding a consumer, plus an in-place update."""
    return BlockSpec("blk", [
        StageSpec("produce", [
            LogicalTask("f", read=(), write=(1,)),
            LogicalTask("f", read=(), write=(2,)),
        ]),
        StageSpec("consume", [
            LogicalTask("g", read=(1, 2), write=(3,), param_slot="p"),
        ]),
        StageSpec("update", [
            LogicalTask("h", read=(3,), write=(3,)),
        ]),
    ], returns={"out": 3})


def test_from_block_structure():
    template = ControllerTemplate.from_block(simple_block(), [0, 1, 0, 0])
    assert template.num_tasks == 4
    assert template.block_id == "blk"
    assert [e.worker for e in template.entries] == [0, 1, 0, 0]
    assert template.returns == {"out": 3}


def test_read_after_write_dependencies():
    template = ControllerTemplate.from_block(simple_block(), [0, 1, 0, 0])
    consumer = template.entries[2]
    assert set(consumer.before) == {0, 1}


def test_write_after_read_and_write_dependencies():
    template = ControllerTemplate.from_block(simple_block(), [0, 1, 0, 0])
    updater = template.entries[3]
    # h writes object 3: it must follow g (the writer); h also reads 3
    assert updater.before == (2,)


def test_anti_dependency_on_readers():
    block = BlockSpec("war", [
        StageSpec("s1", [LogicalTask("f", read=(), write=(1,))]),
        StageSpec("s2", [LogicalTask("g", read=(1,), write=(2,)),
                         LogicalTask("g", read=(1,), write=(3,))]),
        StageSpec("s3", [LogicalTask("f", read=(), write=(1,))]),
    ])
    template = ControllerTemplate.from_block(block, [0, 0, 0, 0])
    overwriter = template.entries[3]
    # the overwrite of object 1 must wait for both readers
    assert set(overwriter.before) == {0, 1, 2}


def test_param_slots_cached_not_values():
    template = ControllerTemplate.from_block(simple_block(), [0, 1, 0, 0])
    assert template.entries[2].param_slot == "p"
    instance = template.instantiate(100, {"p": 42})
    assert instance.param_of(template.entries[2]) == 42
    assert instance.param_of(template.entries[0]) is None


def test_instantiate_task_ids_index_into_array():
    template = ControllerTemplate.from_block(simple_block(), [0, 1, 0, 0])
    instance = template.instantiate(1000, {})
    assert [instance.task_id(i) for i in range(4)] == [1000, 1001, 1002, 1003]


def test_instantiations_share_fixed_structure():
    template = ControllerTemplate.from_block(simple_block(), [0, 1, 0, 0])
    a = template.instantiate(10, {"p": 1})
    b = template.instantiate(20, {"p": 2})
    assert a.template is b.template
    assert a.task_id(2) != b.task_id(2)


def test_reassign_and_queries():
    template = ControllerTemplate.from_block(simple_block(), [0, 1, 0, 0])
    template.reassign(2, 1)
    assert template.entries[2].worker == 1
    assert template.workers_used() == [0, 1]
    assert len(template.entries_on(0)) == 2


def test_builder_records_assignments():
    block = simple_block()
    builder = ControllerTemplateBuilder(block)
    for worker in (0, 1, 0, 1):
        builder.record(worker)
    template = builder.finish()
    assert [e.worker for e in template.entries] == [0, 1, 0, 1]


def test_builder_rejects_wrong_count():
    builder = ControllerTemplateBuilder(simple_block())
    builder.record(0)
    with pytest.raises(ValueError):
        builder.finish()


def test_signature_matches_block():
    block = simple_block()
    template = ControllerTemplate.from_block(block, [0, 1, 0, 0])
    assert template.signature == block.structure_signature()


def test_structure_signature_ignores_ids_not_structure():
    a = simple_block()
    b = simple_block()
    assert a.structure_signature() == b.structure_signature()
    c = BlockSpec("blk", [StageSpec("produce", [
        LogicalTask("f", read=(), write=(9,))])])
    assert c.structure_signature() != a.structure_signature()
