"""Unit tests for the chaos-injection engine (FaultPlan + ChaosNetwork)."""

import pytest

from repro.chaos import REORDER_FLUSH, ChaosNetwork, FaultPlan, FaultRule, PROFILES
from repro.sim.actor import Actor, Message
from repro.sim.engine import Simulator
from repro.sim.metrics import Metrics


class Packet(Message):
    def __init__(self, tag, size_bytes=0):
        self.tag = tag
        self.size_bytes = size_bytes


class Probe(Message):
    """A second message type, for message-type-targeted rules."""

    def __init__(self, tag):
        self.tag = tag
        self.size_bytes = 0


class Sink(Actor):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def handle(self, msg):
        self.arrivals.append((self.sim.now, msg.tag))


def build(plan, latency=0.001, bandwidth=1e9):
    sim = Simulator()
    metrics = Metrics()
    net = ChaosNetwork(sim, plan, latency=latency, bandwidth=bandwidth,
                       metrics=metrics)
    src = net.attach(Sink(sim, "src"))
    dst = net.attach(Sink(sim, "dst"))
    return sim, net, src, dst


# ---------------------------------------------------------------------------
# Individual fault kinds, each on a scripted two-actor exchange
# ---------------------------------------------------------------------------
def test_drop_discards_the_message():
    plan = FaultPlan(seed=1).drop(1.0)
    sim, net, src, dst = build(plan)
    for i in range(5):
        net.transmit(src, dst, Packet(i), depart=0.0)
    sim.run()
    assert dst.arrivals == []
    assert net.metrics.count("chaos.drops") == 5
    assert [kind for _t, kind, *_ in net.fault_log] == ["drop"] * 5


def test_delay_adds_bounded_extra_latency():
    plan = FaultPlan(seed=1).delay(1.0, min_delay=0.005, max_delay=0.005)
    sim, net, src, dst = build(plan, latency=0.001)
    net.transmit(src, dst, Packet("p"), depart=0.0)
    sim.run()
    assert dst.arrivals[0][0] == pytest.approx(0.001 + 0.005)
    assert net.metrics.count("chaos.delays") == 1


def test_duplicate_delivers_twice_with_lag():
    plan = FaultPlan(seed=1).duplicate(1.0, lag=0.002)
    sim, net, src, dst = build(plan, latency=0.001)
    net.transmit(src, dst, Packet("p"), depart=0.0)
    sim.run()
    assert [tag for _t, tag in dst.arrivals] == ["p", "p"]
    assert dst.arrivals[1][0] - dst.arrivals[0][0] == pytest.approx(0.002)
    assert net.metrics.count("chaos.duplicates") == 1


def test_reorder_releases_after_next_transmission():
    # only Probe messages are reordered; the Packet overtakes the held Probe
    plan = FaultPlan(seed=1).reorder(1.0, message_types=("Probe",))
    sim, net, src, dst = build(plan)
    net.transmit(src, dst, Probe("held"), depart=0.0)
    net.transmit(src, dst, Packet("fast"), depart=0.0)
    sim.run()
    assert [tag for _t, tag in dst.arrivals] == ["fast", "held"]
    assert net.metrics.count("chaos.reorders") == 1


def test_reordered_message_flushes_when_pair_goes_quiet():
    plan = FaultPlan(seed=1).reorder(1.0)
    sim, net, src, dst = build(plan, latency=0.001)
    net.transmit(src, dst, Packet("lonely"), depart=0.0)
    sim.run()
    # no follow-up traffic: the safety timer still releases the hold
    assert [tag for _t, tag in dst.arrivals] == ["lonely"]
    assert dst.arrivals[0][0] == pytest.approx(REORDER_FLUSH + 0.001)


# ---------------------------------------------------------------------------
# Rule matching
# ---------------------------------------------------------------------------
def test_rules_match_src_dst_globs_and_message_types():
    rule = FaultRule("drop", 1.0, src="worker-*", dst="controller",
                     message_types=("Heartbeat",))
    assert rule.matches("worker-3", "controller", "Heartbeat")
    assert not rule.matches("driver", "controller", "Heartbeat")
    assert not rule.matches("worker-3", "driver", "Heartbeat")
    assert not rule.matches("worker-3", "controller", "DataMessage")


def test_targeted_rule_leaves_other_traffic_untouched():
    plan = FaultPlan(seed=1).drop(1.0, dst="other")
    sim, net, src, dst = build(plan)
    net.transmit(src, dst, Packet("through"), depart=0.0)
    sim.run()
    assert [tag for _t, tag in dst.arrivals] == ["through"]
    assert net.metrics.count("chaos.drops") == 0


def test_partitions_take_precedence_over_chaos():
    plan = FaultPlan(seed=1).duplicate(1.0)
    sim, net, src, dst = build(plan)
    net.partition("dst")
    net.transmit(src, dst, Packet("gone"), depart=0.0)
    sim.run()
    assert dst.arrivals == []
    assert net.partition_drops == 1
    assert net.metrics.count("chaos.duplicates") == 0


# ---------------------------------------------------------------------------
# Determinism: the fault schedule is a pure function of (plan, seed, traffic)
# ---------------------------------------------------------------------------
def run_scripted_exchange(seed):
    plan = FaultPlan.from_profile("lossy", seed=seed)
    sim, net, src, dst = build(plan)
    for i in range(300):
        net.transmit(src, dst, Packet(i, size_bytes=64), depart=i * 1e-4)
        if i % 3 == 0:
            net.transmit(dst, src, Packet(-i), depart=i * 1e-4)
    sim.run()
    return (net.fault_log, dst.arrivals, src.arrivals,
            net.metrics.counters_snapshot("chaos."))


def test_same_seed_gives_identical_fault_schedule():
    first = run_scripted_exchange(seed=5)
    second = run_scripted_exchange(seed=5)
    assert first == second
    assert len(first[0]) > 0  # the profile actually fired faults


def test_different_seeds_give_different_fault_schedules():
    first = run_scripted_exchange(seed=5)
    second = run_scripted_exchange(seed=6)
    assert first[0] != second[0]


def test_fault_log_agrees_with_counters():
    fault_log, _d, _s, counters = run_scripted_exchange(seed=5)
    by_kind = {}
    for _t, kind, *_ in fault_log:
        by_kind[kind] = by_kind.get(kind, 0) + 1
    assert counters == {f"chaos.{kind}s": count
                        for kind, count in sorted(by_kind.items())}


# ---------------------------------------------------------------------------
# Scripted events and profiles
# ---------------------------------------------------------------------------
def test_scripted_crash_and_pause():
    class FakeWorker:
        def __init__(self):
            self.failed_at = None

        def fail(self):
            self.failed_at = sim.now

    plan = (FaultPlan(seed=0)
            .crash_worker(at=0.5, worker=1)
            .pause_actor(at=0.1, actor="dst", duration=0.2))
    sim = Simulator()
    net = ChaosNetwork(sim, plan)
    net.attach(Sink(sim, "src"))
    net.attach(Sink(sim, "dst"))
    worker = FakeWorker()
    plan.apply_scripted(sim, net, {1: worker})
    sim.run(until=0.15)
    assert "dst" in net.partitioned  # paused
    sim.run(until=0.35)
    assert "dst" not in net.partitioned  # healed
    assert worker.failed_at is None
    sim.run()
    assert worker.failed_at == pytest.approx(0.5)


def test_profiles_build_and_unknown_name_raises():
    for name in PROFILES:
        plan = FaultPlan.from_profile(name, seed=9)
        assert plan.seed == 9
        assert plan.rules
    with pytest.raises(ValueError, match="unknown chaos profile"):
        FaultPlan.from_profile("nope")
