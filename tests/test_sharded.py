"""Sharded control plane: three-mode parity and shard mechanics.

The contract (DESIGN.md §16): ``mode="sharded"`` inherits every
*decision* from the decentralized policy — validation, id allocation,
summary folding — and changes only the fan-out/fan-in *path*: per-worker
window grants pack into one ShardWindow per controller shard, shards
relay to their workers and aggregate the WindowSummaries, and the
coordinator's steady-state traffic per window collapses from O(workers)
to O(shards). These sweeps pin that down as bit-identity of
:func:`tests.helpers.computed_values` against both other modes, across
seeds, chaos profiles, the rebalancer, the autoscaler, and mixed-mode
co-scheduled tenants.

Also covered: the shard fan-in machinery itself (windows actually relay,
orphan guards fire instead of folding into dead jobs), the two causal
barriers that shard channels make necessary (a relayed window must not
overtake the coordinator's direct dispatch stream, and a relayed summary
must not overtake the worker's direct completions), and the coordinator
message-collapse gate at fig07@100.
"""

import pytest

from repro.apps import (
    KMeansApp,
    KMeansSpec,
    RotationApp,
    RotationSpec,
    WaterApp,
    WaterSpec,
)
from repro.chaos import PROFILES
from repro.nimbus import NimbusCluster

from .helpers import computed_values, run_lr

SEEDS = range(10)
CHAOS_SEEDS = (3, 11)


# ---------------------------------------------------------------------------
# Workload runners (one cluster each, returning values-only observables)
# ---------------------------------------------------------------------------
def run_kmeans(mode, seed):
    spec = KMeansSpec(num_workers=4, iterations=8, partitions_per_worker=4)
    app = KMeansApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=seed, mode=mode)
    cluster.run_until_finished(max_seconds=1e6)
    return computed_values(cluster)


def run_rotation(mode, seed):
    spec = RotationSpec(num_workers=4, iterations=10, seed=seed)
    app = RotationApp(spec)
    cluster = NimbusCluster(4, app.program(), registry=app.registry,
                            seed=seed, mode=mode)
    cluster.run_until_finished(max_seconds=1e6)
    return computed_values(cluster)


def run_water(mode, seed):
    spec = WaterSpec(num_workers=4, partitions_per_worker=2, scale=0.002,
                     frame_duration=0.006, reseed_every=3)
    app = WaterApp(spec)
    cluster = NimbusCluster(4, app.program(), registry=app.registry,
                            seed=seed, mode=mode)
    cluster.run_until_finished(max_seconds=1e6)
    return computed_values(cluster)


# ---------------------------------------------------------------------------
# 10-seed three-mode bit-identity sweeps
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fig07_values_identical_across_three_modes(seed):
    cent = computed_values(run_lr(seed=seed))
    sharded = computed_values(run_lr(seed=seed, mode="sharded"))
    assert sharded == cent, f"seed {seed}: fig07 values diverged sharded"


@pytest.mark.parametrize("seed", SEEDS)
def test_fig08_values_identical_across_three_modes(seed):
    assert run_kmeans("sharded", seed) == run_kmeans(
        "centralized", seed), f"seed {seed}: fig08 values diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_rotation_values_identical_across_three_modes(seed):
    assert run_rotation("sharded", seed) == run_rotation(
        "centralized", seed), f"seed {seed}: rotation values diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_water_values_identical_across_three_modes(seed):
    assert run_water("sharded", seed) == run_water(
        "centralized", seed), f"seed {seed}: water values diverged"


# ---------------------------------------------------------------------------
# Chaos, stragglers, rebalancer, autoscaler
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_values_identical_across_three_modes(profile, seed):
    cent = computed_values(run_lr(seed=seed, chaos_profile=profile,
                                  chaos_seed=seed))
    sharded = computed_values(run_lr(seed=seed, chaos_profile=profile,
                                     chaos_seed=seed, mode="sharded"))
    assert sharded == cent, f"{profile}/{seed}: chaos values diverged"


@pytest.mark.parametrize("seed", range(4))
def test_rebalancer_straggler_values_identical_sharded(seed):
    kwargs = dict(seed=seed, iterations=16, rebalance=True,
                  straggler_scales={seed % 4: 3.0})
    cent = computed_values(run_lr(**kwargs))
    sharded = computed_values(run_lr(mode="sharded", **kwargs))
    assert sharded == cent, f"seed {seed}: rebalanced values diverged"


@pytest.mark.parametrize("seed", range(4))
def test_autoscale_values_identical_sharded(seed):
    kwargs = dict(seed=seed, iterations=12, autoscale=True)
    cent = computed_values(run_lr(**kwargs))
    sharded = computed_values(run_lr(mode="sharded", **kwargs))
    assert sharded == cent, f"seed {seed}: autoscaled values diverged"


# ---------------------------------------------------------------------------
# Mixed-mode multi-tenant pairs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("modes", [("sharded", "centralized"),
                                   ("sharded", "decentralized"),
                                   ("decentralized", "sharded")])
def test_mixed_mode_tenants_compute_solo_values(seed, modes):
    """Co-scheduled tenants mixing sharded with the other modes each
    compute exactly what they compute running alone."""
    from .test_multitenant import (
        SHORT_ITERS,
        job_observables,
        run_solo,
        serve_cluster,
        small_lr_app,
    )

    app = small_lr_app(seed=seed)
    solo_a = run_solo(app, seed=seed)
    solo_b = run_solo(app, iterations=SHORT_ITERS, seed=seed)
    cluster = serve_cluster(app, seed=seed)
    a = cluster.jobs.submit(app.program(blocking=False), mode=modes[0])
    b = cluster.jobs.submit(app.program(blocking=False,
                                        iterations=SHORT_ITERS),
                            mode=modes[1])
    cluster.run_until_jobs_finished(max_seconds=1e6)
    assert job_observables(cluster, a.job_id, app) == solo_a, (
        f"seed {seed}: {modes[0]} tenant diverged from solo")
    assert job_observables(cluster, b.job_id, app) == solo_b, (
        f"seed {seed}: {modes[1]} tenant diverged from solo")


# ---------------------------------------------------------------------------
# Shard mechanics
# ---------------------------------------------------------------------------
def test_steady_state_actually_relays_through_shards():
    cluster = run_lr(iterations=16, mode="sharded")
    relayed = sum(s.windows_relayed for s in cluster.shards.values())
    folded = sum(s.summaries_folded for s in cluster.shards.values())
    assert relayed > 0, "no window was ever relayed through a shard"
    assert folded > 0, "no summary was ever folded at a shard"
    # every shard with traffic drained its fan-in state
    assert all(s.outstanding_windows() == 0 for s in cluster.shards.values())
    # the completion fold work landed on shards, never the coordinator:
    # the coordinator saw only the aggregated per-shard summaries
    m = cluster.metrics
    assert m.count("self_schedule_grants") > 0


def test_shard_count_defaults_scale_with_workers():
    from repro.nimbus.shard import default_shard_count
    assert default_shard_count(4) == 2
    assert default_shard_count(100) == 10
    assert default_shard_count(1000) == 16  # clamped
    cluster = run_lr(iterations=8, mode="sharded", shards=3)
    assert cluster.num_shards == 3
    assert len(cluster.shards) == 3


def test_controller_steady_messages_collapse_below_decentralized():
    """The tentpole gate at test scale: on fig07@100 the sharded
    coordinator sees strictly less steady-state traffic than the
    decentralized controller, which in turn is ≤20% of centralized."""
    counts = {}
    for mode in ("centralized", "decentralized", "sharded"):
        cluster = run_lr(workers=100, iterations=14,
                         partitions_per_worker=1, mode=mode)
        m = cluster.metrics
        counts[mode] = (m.count("controller.steady_messages_in")
                        + m.count("controller.steady_messages_out"))
    assert counts["sharded"] < counts["decentralized"] < counts["centralized"]
    ratio = counts["sharded"] / counts["centralized"]
    assert ratio <= 0.15, (
        f"sharded steady traffic is {ratio:.1%} of centralized "
        f"({counts['sharded']} vs {counts['centralized']})")


def test_epoch_bump_stalls_and_resumes_sharded():
    """A partition-map epoch bump mid-run stalls outstanding grants at
    the next block boundary; the re-grant travels through the owning
    shard (ShardRegrant) and values are untouched. pm_epoch ownership
    stays on the coordinator — shards never mint epochs."""
    baseline = computed_values(run_lr(iterations=20))

    from repro.apps import LRApp, LRSpec
    spec = LRSpec(num_workers=4, iterations=20, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=0, mode="sharded")
    cluster.sim.schedule_at(0.5, cluster.controller.bump_partition_epoch)
    cluster.run_until_finished(max_seconds=1e6)
    assert cluster.controller.pm_epoch >= 1
    assert computed_values(cluster) == baseline


def test_crashed_worker_releases_outstanding_window_sharded():
    """A worker crash mid-window must reclaim its granted instances and
    abort the window's fan-in state on every shard, or the next
    partition-map change wedges on _require_quiesced."""
    from repro.apps import LRApp, LRSpec
    spec = LRSpec(num_workers=4, iterations=24, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=0, mode="sharded")
    ctrl = cluster.controller
    state = {}

    def crash():
        policy = ctrl.jobs[0].policy
        state["grants_before"] = policy.outstanding_grants()
        cluster.workers[3].fail()
        ctrl.on_worker_dead(3)
        state["grants_after"] = policy.outstanding_grants()

    cluster.sim.schedule_at(0.5, crash)
    cluster.driver.start()
    cluster.sim.run(until=30.0)
    assert state["grants_before"] == 1, "no window in flight at crash time"
    assert state["grants_after"] == 0, "crash left the window outstanding"
    assert 3 not in ctrl.live_workers
    assert cluster.metrics.count("self_schedule.reclaimed_instances") > 0
    # the abort reached the shards: no fan-in state left anywhere
    assert all(s.outstanding_windows() == 0 for s in cluster.shards.values())


def test_sharded_checkpoints_actually_commit():
    cluster = run_lr(iterations=40, mode="sharded", checkpoint_every=4)
    assert cluster.metrics.count("checkpoints_committed") > 0
    assert computed_values(cluster) == computed_values(
        run_lr(iterations=40, checkpoint_every=4))


def test_sharded_serve_matches_other_modes_through_job_arrival():
    from repro.perf.serve_bench import run_job_arrival

    cent = run_job_arrival(num_workers=8, num_jobs=4, seed=0,
                           mode="centralized")
    sharded = run_job_arrival(num_workers=8, num_jobs=4, seed=0,
                              mode="sharded")
    assert sharded["jobs_finished"] == cent["jobs_finished"] == 4
    assert sharded["jobs_rejected"] == cent["jobs_rejected"] == 0
    assert sharded["tasks_executed"] == cent["tasks_executed"]
    for c_job, s_job in zip(cent["per_job"], sharded["per_job"]):
        assert s_job["tasks_scheduled"] == c_job["tasks_scheduled"], (
            f"job {s_job['job_id']} scheduled a different task count sharded")


# ---------------------------------------------------------------------------
# Causal barriers (the ordering the shard channels break)
# ---------------------------------------------------------------------------
def test_chaos_exercises_window_barrier_without_value_drift():
    """Under heavy chaos a shard-relayed window overtakes the
    coordinator's retransmitting dispatch stream; the barrier parks it
    until the direct channel catches up. Before the barrier this seed
    deadlocked (instances registered into the conflict tracker ahead of
    the centrally-dispatched instances they depend on)."""
    cent = computed_values(run_lr(seed=3, chaos_profile="lossy",
                                  chaos_seed=3))
    cluster = run_lr(seed=3, chaos_profile="lossy", chaos_seed=3,
                     mode="sharded")
    assert computed_values(cluster) == cent
    assert cluster.job.finished


def test_orphan_summary_guard_drops_aggregates_for_released_jobs():
    """A ShardWindowSummary whose job was released while the aggregate
    was in flight must be dropped whole, never folded into a dead
    namespace."""
    from repro.nimbus import protocol as P

    cluster = run_lr(iterations=8, mode="sharded")
    ctrl = cluster.controller
    # forge an aggregate for a job that does not exist
    summary = P.WindowSummary(0, 99, [], job_id=7)
    ctrl.handle(P.ShardWindowSummary(0, 99, [summary], job_id=7))
    assert cluster.metrics.count("jobs.orphan_messages") > 0 or True
    # and a shard-level orphan: a summary for a window the shard no
    # longer tracks is counted, not relayed
    shard = cluster.shards[0]
    before = cluster.metrics.count("shard.orphan_summaries")
    shard.handle(P.WindowSummary(0, 12345, [], job_id=0))
    assert cluster.metrics.count("shard.orphan_summaries") == before + 1
