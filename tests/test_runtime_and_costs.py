"""Unit tests for the task runtime, cost model, commands, and protocol."""

import pytest

from repro.nimbus.commands import (
    Command,
    CommandKind,
    make_copy_pair,
    make_local_copy,
    make_task,
)
from repro.nimbus.costs import CostModel, PAPER_COSTS
from repro.nimbus.data import ObjectStore
from repro.nimbus.runtime import FunctionRegistry, TaskContext
from repro.nimbus import protocol as P


class TestFunctionRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        fn = registry.register("f", duration=1.5)
        assert registry.get("f") is fn
        assert "f" in registry

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register("f")
        with pytest.raises(ValueError):
            registry.register("f")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            FunctionRegistry().get("nope")

    def test_constant_duration(self):
        registry = FunctionRegistry()
        registry.register("f", duration=0.25)
        assert registry.get("f").duration_of(None, 3) == 0.25

    def test_callable_duration_receives_params_and_worker(self):
        registry = FunctionRegistry()
        registry.register("f", duration=lambda params, wid: params * wid)
        assert registry.get("f").duration_of(2.0, 3) == 6.0

    def test_builtin_local_copy(self):
        registry = FunctionRegistry()
        store = ObjectStore()
        store.put(1, "payload")
        store.create(2)
        ctx = TaskContext(store, {"src": 1, "dst": 2}, 0, (1,), (2,))
        registry.get("__local_copy__").fn(ctx)
        assert store.get(2) == "payload"

    def test_task_context_reads_in_order(self):
        store = ObjectStore()
        store.put(1, "a")
        store.put(2, "b")
        ctx = TaskContext(store, None, 0, (2, 1), ())
        assert ctx.reads() == ["b", "a"]


class TestCostModel:
    def test_paper_defaults(self):
        costs = PAPER_COSTS
        # Table 1: receive + schedule = the paper's 134 µs central cost
        assert (costs.central_schedule_per_task
                + costs.central_receive_per_task) == pytest.approx(134e-6)
        assert costs.spark_schedule_per_task == pytest.approx(166e-6)
        assert costs.install_controller_template_per_task == pytest.approx(25e-6)
        # Table 2
        assert costs.instantiate_worker_template_auto_per_task == pytest.approx(1.7e-6)
        assert costs.instantiate_worker_template_validate_per_task == pytest.approx(7.3e-6)
        # Table 3
        assert costs.edit_per_task == pytest.approx(41e-6)
        # Naiad install: 230 ms / 8000 tasks
        assert costs.naiad_install_per_task * 8000 == pytest.approx(0.23)

    def test_scaled(self):
        slow = PAPER_COSTS.scaled(2.0)
        assert slow.central_schedule_per_task == pytest.approx(
            2 * PAPER_COSTS.central_schedule_per_task)
        assert slow.edit_per_task == pytest.approx(82e-6)
        # non-control characteristics are untouched
        assert slow.storage_bandwidth == PAPER_COSTS.storage_bandwidth

    def test_scaled_is_a_copy(self):
        slow = PAPER_COSTS.scaled(2.0)
        assert slow is not PAPER_COSTS
        assert PAPER_COSTS.central_schedule_per_task == pytest.approx(104e-6)


class TestCommands:
    def test_make_task(self):
        cmd = make_task(7, 2, "fn", read=(1,), write=(2,), before=[3],
                        params="p")
        assert cmd.kind == CommandKind.TASK
        assert cmd.cid == 7 and cmd.worker == 2
        assert cmd.function == "fn" and cmd.params == "p"
        assert cmd.before == [3]

    def test_copy_pair_tags_match(self):
        send, recv = make_copy_pair(1, 2, oid=9, src=0, dst=1,
                                    size_bytes=128)
        assert send.tag == recv.tag == ("cid", 2)
        assert send.kind == CommandKind.SEND and recv.kind == CommandKind.RECV
        assert send.read == (9,) and recv.write == (9,)
        assert send.dst_worker == 1 and recv.src_worker == 0
        assert send.size_bytes == recv.size_bytes == 128

    def test_local_copy_command(self):
        cmd = make_local_copy(5, 0, src_oid=1, dst_oid=2)
        assert cmd.function == "__local_copy__"
        assert cmd.read == (1,) and cmd.write == (2,)

    def test_conflicts_view(self):
        cmd = make_task(1, 0, "f", read=(1, 2), write=(3,))
        assert cmd.conflicts() == ((1, 2), (3,))


class TestProtocolSizes:
    def test_submit_block_scales_with_tasks(self):
        from repro.core.spec import BlockSpec, LogicalTask, StageSpec
        small = BlockSpec("s", [StageSpec("s", [
            LogicalTask("f", read=(), write=(1,))])])
        big = BlockSpec("b", [StageSpec("s", [
            LogicalTask("f", read=(), write=(i,)) for i in range(100)])])
        assert (P.SubmitBlock(big, {}).size_bytes
                > 50 * P.SubmitBlock(small, {}).size_bytes)

    def test_instantiate_block_is_compact(self):
        from repro.core.spec import BlockSpec, LogicalTask, StageSpec
        big = BlockSpec("b", [StageSpec("s", [
            LogicalTask("f", read=(), write=(i,)) for i in range(100)])])
        submit = P.SubmitBlock(big, {}).size_bytes
        instantiate = P.InstantiateBlock("b", 100, 0, {}).size_bytes
        # the whole point: instantiation is ~50x smaller on the wire
        assert instantiate * 10 < submit

    def test_data_message_carries_payload_size(self):
        msg = P.DataMessage(("t",), 1, b"x", size_bytes=4096)
        assert msg.size_bytes == 4096
        tiny = P.DataMessage(("t",), 1, None, size_bytes=1)
        assert tiny.size_bytes >= 64  # floor: headers dominate tiny payloads
